// Package client is the remote face of an mlkv-server: a connection pool
// speaking the internal/wire protocol, from which callers open any number
// of named models — the network half of the paper's
// Open(model_id, dim, staleness_bound) interface. Each opened Model
// exposes the same kv.Store/kv.Session interfaces the in-process engines
// implement, so the YCSB harness, benchmark sweeps, and examples run
// against a remote model unchanged.
//
// Sessions are assigned to pooled connections round-robin and announce
// themselves to the server with an ATTACH frame (and a DETACH on Close),
// so the server's per-model session accounting tracks remote workers
// truthfully. Every connection has a reader goroutine that demultiplexes
// responses by correlation ID, so sessions sharing a connection pipeline
// their requests: the second request is on the wire before the first
// response returns. Batch operations travel as single frames and fan into
// the server's sharded store as one batched call — the unit that
// amortizes the network round trip.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/latency"
	"github.com/llm-db/mlkv-go/internal/wire"
)

// Options configures Dial.
type Options struct {
	// Conns is the pool size (default 2). Each server connection is
	// served by one engine session per attached model and handled
	// serially on the server, so parallelism across a model is
	// min(Conns, concurrent sessions); sessions beyond Conns share
	// connections via pipelining. Set it to the worker count for full
	// fan-out.
	Conns int
	// MaxFrame bounds incoming response frames (default wire.DefaultMaxFrame).
	MaxFrame uint32
	// DialTimeout bounds each TCP connect (default 5s).
	DialTimeout time.Duration
	// MaxKeysPerFrame splits larger batches into multiple frames (default
	// 4096, capped at wire.MaxBatchKeys).
	MaxKeysPerFrame int
}

// Client is a connection pool onto one mlkv-server. Models are opened
// from it with OpenModel; the Client itself carries no store state.
type Client struct {
	opts       Options
	conns      []*conn
	next       atomic.Uint64
	serverName string

	// lat holds per-op-class round-trip histograms shared by every
	// connection in the pool: wall time from just before the frame write
	// to response receipt, so it includes queueing in the pipelined
	// demux — the end-to-end tail a caller actually experiences.
	lat latency.OpSet
}

// Latency exposes the pool's round-trip histograms. The driver folds
// them into Stats; the composite remote RMW records into OpRMW here.
func (c *Client) Latency() *latency.OpSet { return &c.lat }

// Dial connects the pool and performs the HELLO handshake, failing fast
// on a protocol-version mismatch.
func Dial(addr string, opts Options) (*Client, error) {
	if opts.Conns <= 0 {
		opts.Conns = 2
	}
	if opts.MaxFrame == 0 {
		opts.MaxFrame = wire.DefaultMaxFrame
	}
	if opts.DialTimeout == 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.MaxKeysPerFrame <= 0 || opts.MaxKeysPerFrame > wire.MaxBatchKeys {
		opts.MaxKeysPerFrame = 4096
	}
	c := &Client{opts: opts}
	for i := 0; i < opts.Conns; i++ {
		cn, err := dialConn(addr, opts, &c.lat)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.conns = append(c.conns, cn)
	}
	p, err := c.conns[0].roundTrip(wire.OpHello, wire.EncodeHello())
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	_, name, err := wire.DecodeHelloResp(p)
	c.conns[0].release(p)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	c.serverName = name
	return c, nil
}

// ServerName identifies the server (from the HELLO response).
func (c *Client) ServerName() string { return c.serverName }

// Close tears down every pooled connection; outstanding requests and all
// models opened from this client fail afterwards.
func (c *Client) Close() error {
	var first error
	for _, cn := range c.conns {
		if err := cn.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// pick returns the next pooled connection round-robin.
func (c *Client) pick() *conn {
	return c.conns[c.next.Add(1)%uint64(len(c.conns))]
}

// OpenSpec names the model an OpenModel call wants.
type OpenSpec struct {
	// ID is the model name (letters, digits, '.', '_', '-').
	ID string
	// Dim is the embedding dimension; must match an existing model.
	Dim int
	// Shards requests a hash-partition count for a newly created model
	// (0 lets the server choose; advisory for an existing model).
	Shards int
	// Bound is the staleness bound to apply; wire.BoundUnset keeps the
	// server's default (new model) or the current bound (existing model).
	Bound int64
	// Engine requests a storage engine ("faster", "lsm", "bptree") for a
	// newly created model; "" takes the server's choice. An existing model
	// opened with a different engine is refused by the server.
	Engine string
}

// OpenModel creates or looks up the named model on the server and returns
// its handle. Opening the same name twice returns equivalent models — the
// server deduplicates by name.
func (c *Client) OpenModel(ctx context.Context, spec OpenSpec) (*Model, error) {
	req, err := wire.EncodeOpen(spec.ID, spec.Dim, spec.Shards, spec.Bound, spec.Engine)
	if err != nil {
		return nil, fmt.Errorf("client: open model %q: %w", spec.ID, err)
	}
	cn := c.pick()
	p, err := cn.roundTripCtx(ctx, wire.OpOpen, req)
	if err != nil {
		return nil, fmt.Errorf("client: open model %q: %w", spec.ID, err)
	}
	handle, dim, shards, bound, engine, err := wire.DecodeOpenResp(p)
	cn.release(p)
	if err != nil {
		return nil, fmt.Errorf("client: open model %q: %w", spec.ID, err)
	}
	if dim != spec.Dim {
		return nil, fmt.Errorf("client: model %q: server dim %d != requested %d", spec.ID, dim, spec.Dim)
	}
	return &Model{c: c, handle: handle, id: spec.ID, dim: dim, shards: shards, bound: bound, engine: engine}, nil
}

// Model is one named model on the server: a remote kv.Store. It also
// implements kv.Checkpointer, kv.StatsReporter, and kv.Sharded by
// delegating to the server.
type Model struct {
	c      *Client
	handle uint32
	id     string
	dim    int
	shards int
	bound  int64
	engine string
}

// ID returns the model name.
func (m *Model) ID() string { return m.id }

// Dim returns the embedding dimension.
func (m *Model) Dim() int { return m.dim }

// ValueSize returns the model's fixed value payload size (Dim × 4).
func (m *Model) ValueSize() int { return m.dim * 4 }

// Shards returns the server store's hash-partition count.
func (m *Model) Shards() int { return m.shards }

// StalenessBound returns the bound in effect when the model was opened.
func (m *Model) StalenessBound() int64 { return m.bound }

// Name identifies the remote engine in benchmark output.
func (m *Model) Name() string { return "remote(" + m.engine + ")" }

// Close releases nothing on the server (the registry owns the model's
// lifecycle); it exists to satisfy kv.Store. Close the Client to tear
// down the connections.
func (m *Model) Close() error { return nil }

// Checkpoint asks the server to make the model durable.
func (m *Model) Checkpoint() error { return m.CheckpointCtx(context.Background()) }

// CheckpointCtx is Checkpoint bounded by ctx.
func (m *Model) CheckpointCtx(ctx context.Context) error {
	cn := m.c.pick()
	p, err := cn.roundTripCtx(ctx, wire.OpCheckpoint, wire.EncodeHandle(m.handle))
	cn.release(p)
	return err
}

// Stats fetches the engine's merged operation counters (kv.StatsReporter).
func (m *Model) Stats() faster.StatsSnapshot {
	s, err := m.ModelStats(context.Background())
	if err != nil {
		return faster.StatsSnapshot{}
	}
	return s.StatsSnapshot
}

// ModelStats fetches the full per-model counter set: engine counters plus
// the server's batch/lookahead frame counts and active-session gauge.
func (m *Model) ModelStats(ctx context.Context) (wire.ModelStats, error) {
	cn := m.c.pick()
	p, err := cn.roundTripCtx(ctx, wire.OpStats, wire.EncodeHandle(m.handle))
	if err != nil {
		return wire.ModelStats{}, err
	}
	s, err := wire.DecodeStatsResp(p)
	cn.release(p)
	return s, err
}

// NewSession returns a session bound to one pooled connection, announced
// to the server with an ATTACH frame. Like every kv.Session it is
// single-goroutine; sessions sharing a connection pipeline.
func (m *Model) NewSession() (kv.Session, error) {
	return m.NewSessionCtx(context.Background())
}

// NewSessionCtx is NewSession bounded by ctx.
func (m *Model) NewSessionCtx(ctx context.Context) (*Session, error) {
	cn := m.c.pick()
	if _, err := cn.roundTripCtx(ctx, wire.OpAttach, wire.EncodeHandle(m.handle)); err != nil {
		return nil, fmt.Errorf("client: attach to model %q: %w", m.id, err)
	}
	return &Session{m: m, cn: cn, vs: m.dim * 4}, nil
}

// Session is one worker's remote handle onto a model.
type Session struct {
	m      *Model
	cn     *conn
	vs     int
	closed bool
	// enc is the session's reusable request-encode scratch. A session is
	// single-goroutine and a round trip returns only after its frame is
	// written, so reuse across requests is safe and the steady-state
	// request path allocates nothing.
	enc []byte
}

func (s *Session) Get(key uint64, dst []byte) (bool, error) {
	return s.GetCtx(context.Background(), key, dst)
}

// GetCtx reads one key, honoring ctx end to end: the frame carries the
// context's remaining budget so a clocked read stalled on the staleness
// bound gives up on the server at the deadline (stranding no token), and
// the round trip itself returns ctx.Err() if ctx ends first.
func (s *Session) GetCtx(ctx context.Context, key uint64, dst []byte) (bool, error) {
	if len(dst) != s.vs {
		return false, fmt.Errorf("client: dst length %d != value size %d", len(dst), s.vs)
	}
	s.enc = wire.AppendGet(s.enc[:0], s.m.handle, key, waitMsFrom(ctx))
	p, err := s.cn.roundTripCtx(ctx, wire.OpGet, s.enc)
	if err != nil {
		// Near the deadline the server's "gave up" error and our own
		// timer race; the caller asked for ctx semantics either way.
		if cerr := ctx.Err(); cerr != nil {
			return false, cerr
		}
		return false, err
	}
	found, err := wire.DecodeGetResp(p, dst)
	s.cn.release(p)
	return found, err
}

// waitMsFrom converts ctx's remaining budget to the wire's wait field
// (0 = no deadline, wait forever).
func waitMsFrom(ctx context.Context) uint32 {
	d, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(d).Milliseconds()
	if ms <= 0 {
		return 1
	}
	if ms >= math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(ms)
}

// Peek implements kv.PeekSession: a clock-free read on the server, so
// remote evaluation never acquires staleness tokens that would stall
// training reads.
func (s *Session) Peek(key uint64, dst []byte) (bool, error) {
	return s.PeekCtx(context.Background(), key, dst)
}

// PeekCtx is Peek bounded by ctx.
func (s *Session) PeekCtx(ctx context.Context, key uint64, dst []byte) (bool, error) {
	if len(dst) != s.vs {
		return false, fmt.Errorf("client: dst length %d != value size %d", len(dst), s.vs)
	}
	s.enc = wire.AppendKey(s.enc[:0], s.m.handle, key)
	p, err := s.cn.roundTripCtx(ctx, wire.OpPeek, s.enc)
	if err != nil {
		return false, err
	}
	found, err := wire.DecodeGetResp(p, dst)
	s.cn.release(p)
	return found, err
}

func (s *Session) Put(key uint64, val []byte) error {
	return s.PutCtx(context.Background(), key, val)
}

// PutCtx is Put bounded by ctx.
func (s *Session) PutCtx(ctx context.Context, key uint64, val []byte) error {
	if len(val) != s.vs {
		return fmt.Errorf("client: val length %d != value size %d", len(val), s.vs)
	}
	s.enc = wire.AppendPut(s.enc[:0], s.m.handle, key, val)
	p, err := s.cn.roundTripCtx(ctx, wire.OpPut, s.enc)
	s.cn.release(p)
	return err
}

func (s *Session) Delete(key uint64) error {
	return s.DeleteCtx(context.Background(), key)
}

// DeleteCtx is Delete bounded by ctx.
func (s *Session) DeleteCtx(ctx context.Context, key uint64) error {
	s.enc = wire.AppendKey(s.enc[:0], s.m.handle, key)
	p, err := s.cn.roundTripCtx(ctx, wire.OpDelete, s.enc)
	s.cn.release(p)
	return err
}

// Prefetch ships a one-key LOOKAHEAD; true means the server copied the
// record toward memory.
func (s *Session) Prefetch(key uint64) (bool, error) {
	n, err := s.Lookahead([]uint64{key})
	return n > 0, err
}

// Lookahead asks the server to prefetch keys, returning how many records
// it copied toward memory.
func (s *Session) Lookahead(keys []uint64) (int, error) {
	return s.LookaheadCtx(context.Background(), keys)
}

// LookaheadCtx is Lookahead bounded by ctx.
func (s *Session) LookaheadCtx(ctx context.Context, keys []uint64) (int, error) {
	total := 0
	for len(keys) > 0 {
		chunk := keys
		if len(chunk) > s.m.c.opts.MaxKeysPerFrame {
			chunk = chunk[:s.m.c.opts.MaxKeysPerFrame]
		}
		keys = keys[len(chunk):]
		s.enc = wire.AppendKeys(s.enc[:0], s.m.handle, chunk)
		p, err := s.cn.roundTripCtx(ctx, wire.OpLookahead, s.enc)
		if err != nil {
			return total, err
		}
		n, err := wire.DecodeUint32(p)
		s.cn.release(p)
		if err != nil {
			return total, err
		}
		total += int(n)
	}
	return total, nil
}

// GetBatch implements kv.BatchSession: one frame per MaxKeysPerFrame
// chunk, each fanned into the server's sharded store as a single batched
// read.
func (s *Session) GetBatch(keys []uint64, vals []byte, found []bool) error {
	return s.GetBatchCtx(context.Background(), keys, vals, found)
}

// GetBatchCtx is GetBatch bounded by ctx end to end: checked per frame on
// the round trip, and carried in each frame so a stalled batch gives up
// on the server at the deadline (see GetCtx).
func (s *Session) GetBatchCtx(ctx context.Context, keys []uint64, vals []byte, found []bool) error {
	vs := s.vs
	for len(keys) > 0 {
		n := len(keys)
		if n > s.m.c.opts.MaxKeysPerFrame {
			n = s.m.c.opts.MaxKeysPerFrame
		}
		s.enc = wire.AppendGetBatch(s.enc[:0], s.m.handle, waitMsFrom(ctx), keys[:n])
		p, err := s.cn.roundTripCtx(ctx, wire.OpGetBatch, s.enc)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			return err
		}
		err = wire.DecodeGetBatchResp(p, vs, found[:n], vals[:n*vs])
		s.cn.release(p)
		if err != nil {
			return err
		}
		keys, found, vals = keys[n:], found[n:], vals[n*vs:]
	}
	return nil
}

// PutBatch implements kv.BatchSession.
func (s *Session) PutBatch(keys []uint64, vals []byte) error {
	return s.PutBatchCtx(context.Background(), keys, vals)
}

// PutBatchCtx is PutBatch bounded by ctx, checked per frame.
func (s *Session) PutBatchCtx(ctx context.Context, keys []uint64, vals []byte) error {
	vs := s.vs
	for len(keys) > 0 {
		n := len(keys)
		if n > s.m.c.opts.MaxKeysPerFrame {
			n = s.m.c.opts.MaxKeysPerFrame
		}
		s.enc = wire.AppendPutBatch(s.enc[:0], s.m.handle, keys[:n], vals[:n*vs])
		p, err := s.cn.roundTripCtx(ctx, wire.OpPutBatch, s.enc)
		s.cn.release(p)
		if err != nil {
			return err
		}
		keys, vals = keys[n:], vals[n*vs:]
	}
	return nil
}

// Close releases the session: a DETACH frame tells the server to drop it
// from the model's active-session accounting (best effort — a dead
// connection already released it server-side). The pooled connection
// stays open for other sessions. Idempotent.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	p, _ := s.cn.roundTrip(wire.OpDetach, wire.EncodeHandle(s.m.handle))
	s.cn.release(p)
}

// conn is one pooled connection with a demultiplexing reader goroutine.
type conn struct {
	c  net.Conn
	bw *bufio.Writer
	fw *wire.FrameWriter // over bw; guarded by wmu

	wmu sync.Mutex // serializes frame writes across sessions

	pmu     sync.Mutex
	pending map[uint32]chan response
	closed  bool
	failure error

	nextID atomic.Uint32
	done   chan struct{}

	// bufs recycles response payload buffers: the read loop copies each
	// frame's payload out of its reusable frame buffer into a pooled one,
	// and the round-trip caller releases it back after parsing. Callers
	// that abandon a round trip simply leak their buffer to the GC.
	bufs sync.Pool

	// lat points at the owning Client's pool-wide histograms; data-op
	// round trips record into it (nil on test-only bare conns).
	lat *latency.OpSet
}

// getBuf returns a pooled buffer of length n (allocating if the pooled
// one is too small).
func (cn *conn) getBuf(n int) []byte {
	if v := cn.bufs.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// release returns a round trip's payload to the pool. Safe on nil and
// zero-capacity slices.
func (cn *conn) release(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	cn.bufs.Put(&b)
}

type response struct {
	op      wire.Op
	payload []byte
}

func dialConn(addr string, opts Options, lat *latency.OpSet) (*conn, error) {
	nc, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // latency matters more than segment count
	}
	cn := &conn{
		c:       nc,
		bw:      bufio.NewWriterSize(nc, connBufSize),
		pending: make(map[uint32]chan response),
		done:    make(chan struct{}),
		lat:     lat,
	}
	cn.fw = wire.NewFrameWriter(cn.bw)
	go cn.readLoop(opts.MaxFrame)
	return cn, nil
}

const connBufSize = 64 << 10

// readLoop demultiplexes responses to their waiting round trips until the
// connection dies, then fails everything still pending.
func (cn *conn) readLoop(maxFrame uint32) {
	br := bufio.NewReaderSize(cn.c, connBufSize)
	var err error
	// One reusable frame buffer for the loop; each payload is copied into
	// a pooled buffer before handoff, so neither side of the exchange
	// allocates in steady state.
	var frameBuf []byte
	for {
		var f wire.Frame
		f, frameBuf, err = wire.ReadFrameBuf(br, maxFrame, frameBuf)
		if err != nil {
			break
		}
		cn.pmu.Lock()
		ch, ok := cn.pending[f.CorrID]
		delete(cn.pending, f.CorrID)
		cn.pmu.Unlock()
		if ok {
			var p []byte
			if len(f.Payload) > 0 {
				p = cn.getBuf(len(f.Payload))
				copy(p, f.Payload)
			}
			// Buffered (cap 1): a caller that gave up on ctx is not
			// reading, and the response must not stall the loop.
			ch <- response{op: f.Op, payload: p}
		}
	}
	cn.pmu.Lock()
	if cn.failure == nil {
		cn.failure = fmt.Errorf("client: connection lost: %w", err)
	}
	for id, ch := range cn.pending {
		delete(cn.pending, id)
		close(ch)
	}
	cn.pmu.Unlock()
	close(cn.done)
}

// roundTrip sends one request and blocks for its response. Concurrent
// calls pipeline: writes interleave under wmu and the read loop routes
// each response to its caller.
func (cn *conn) roundTrip(op wire.Op, payload []byte) ([]byte, error) {
	return cn.roundTripCtx(context.Background(), op, payload)
}

// roundTripCtx is roundTrip bounded by ctx: if ctx ends first the caller
// gets ctx.Err() and the eventual response is dropped by the read loop.
// The request itself is not retracted — the server will still process it.
//
// A non-empty success payload is a pooled buffer: the caller must hand it
// back with cn.release once parsed (forgetting to merely costs the reuse).
func (cn *conn) roundTripCtx(ctx context.Context, op wire.Op, payload []byte) ([]byte, error) {
	cls, timed := opClass(op)
	if !timed || cn.lat == nil {
		return cn.doRoundTrip(ctx, op, payload)
	}
	start := time.Now()
	p, err := cn.doRoundTrip(ctx, op, payload)
	cn.lat.Since(cls, start)
	return p, err
}

// opClass maps a request opcode to its latency class; control-plane ops
// (HELLO, OPEN, ATTACH, STATS, ...) are not timed. PEEK shares the Get
// histogram and DELETE the Put one, matching the server's folding.
func opClass(op wire.Op) (latency.Op, bool) {
	switch op {
	case wire.OpGet, wire.OpPeek:
		return latency.OpGet, true
	case wire.OpGetBatch:
		return latency.OpGetBatch, true
	case wire.OpPut, wire.OpDelete:
		return latency.OpPut, true
	case wire.OpPutBatch:
		return latency.OpPutBatch, true
	case wire.OpLookahead:
		// Prefetch hints ride the Get class: they contend for the same
		// store shards and their stalls surface as read tail.
		return latency.OpGet, true
	}
	return 0, false
}

func (cn *conn) doRoundTrip(ctx context.Context, op wire.Op, payload []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	id := cn.nextID.Add(1)
	ch := make(chan response, 1)
	cn.pmu.Lock()
	if cn.closed || cn.failure != nil {
		err := cn.failure
		cn.pmu.Unlock()
		if err == nil {
			err = errors.New("client: connection closed")
		}
		return nil, err
	}
	cn.pending[id] = ch
	cn.pmu.Unlock()

	cn.wmu.Lock()
	err := cn.fw.Write(id, op, payload)
	if err == nil {
		err = cn.bw.Flush()
	}
	cn.wmu.Unlock()
	if err != nil {
		cn.pmu.Lock()
		delete(cn.pending, id)
		cn.pmu.Unlock()
		return nil, err
	}

	var r response
	var ok bool
	select {
	case r, ok = <-ch:
	case <-ctx.Done():
		// Abandon the round trip. Leave the pending entry for the read
		// loop: the buffered channel absorbs the late response.
		return nil, ctx.Err()
	}
	if !ok {
		cn.pmu.Lock()
		err := cn.failure
		cn.pmu.Unlock()
		return nil, err
	}
	switch r.op {
	case wire.RespOK:
		return r.payload, nil
	case wire.RespErr:
		err := respError(string(r.payload))
		cn.release(r.payload)
		return nil, err
	}
	cn.release(r.payload)
	return nil, fmt.Errorf("client: unexpected response opcode %s", r.op)
}

// respError rebuilds a server error. Deadline/cancellation errors — a
// read that gave up server-side at the wait budget this client put on the
// wire — come back as the canonical context errors so errors.Is works
// across the network boundary.
func respError(msg string) error {
	switch {
	case strings.Contains(msg, context.DeadlineExceeded.Error()):
		return fmt.Errorf("client: server gave up: %w", context.DeadlineExceeded)
	case strings.Contains(msg, context.Canceled.Error()):
		return fmt.Errorf("client: server gave up: %w", context.Canceled)
	}
	return errors.New(msg)
}

func (cn *conn) close() error {
	cn.pmu.Lock()
	cn.closed = true
	cn.pmu.Unlock()
	err := cn.c.Close()
	<-cn.done // reader has failed all pending and exited
	return err
}
