package client

// Tests for the pool's two tail optimizations: coalesced frame flushing
// (many pipelined writers, ~one syscall) and hedged reads (a straggling
// admissible read re-issued clock-free on a second connection). The
// hedge lifecycle tests run against a scripted in-test wire server so
// response timing is controlled exactly; the coalescing test runs
// against the real server through a write-counting net.Conn.

import (
	"context"
	"errors"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/latency"
	"github.com/llm-db/mlkv-go/internal/server"
	"github.com/llm-db/mlkv-go/internal/wire"
)

// fakeServer speaks just enough of the wire protocol to open a model and
// answer reads, with per-opcode scripted behavior: an added delay, a
// forced RespErr, or a muted (never answered) op. Each request is handled
// on its own goroutine so a delayed GETBATCH does not block the PEEKBATCH
// pipelined behind it — the property hedging depends on server-side.
type fakeServer struct {
	ln  net.Listener
	dim int

	mu    sync.Mutex
	delay map[wire.Op]time.Duration
	errOn map[wire.Op]string
	muted map[wire.Op]bool

	// attaches counts ATTACH frames served — the reconnect test asserts a
	// healed connection re-attaches its session exactly once.
	attaches atomic.Int64
}

func newFakeServer(t *testing.T, dim int) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &fakeServer{
		ln: ln, dim: dim,
		delay: map[wire.Op]time.Duration{},
		errOn: map[wire.Op]string{},
		muted: map[wire.Op]bool{},
	}
	go s.accept()
	t.Cleanup(func() { ln.Close() })
	return s
}

func (s *fakeServer) setDelay(op wire.Op, d time.Duration) {
	s.mu.Lock()
	s.delay[op] = d
	s.mu.Unlock()
}

func (s *fakeServer) setErr(op wire.Op, msg string) {
	s.mu.Lock()
	s.errOn[op] = msg
	s.mu.Unlock()
}

func (s *fakeServer) mute(op wire.Op) {
	s.mu.Lock()
	s.muted[op] = true
	s.mu.Unlock()
}

func (s *fakeServer) accept() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.serve(c)
	}
}

func (s *fakeServer) serve(c net.Conn) {
	defer c.Close()
	var wmu sync.Mutex // handler goroutines interleave responses
	for {
		f, err := wire.ReadFrame(c, 0) // fresh payload per frame; goroutine-safe
		if err != nil {
			return
		}
		go s.handle(c, &wmu, f)
	}
}

func (s *fakeServer) handle(c net.Conn, wmu *sync.Mutex, f wire.Frame) {
	s.mu.Lock()
	d, muted, errMsg := s.delay[f.Op], s.muted[f.Op], s.errOn[f.Op]
	s.mu.Unlock()
	if muted {
		return
	}
	if d > 0 {
		time.Sleep(d)
	}
	op := wire.RespOK
	var resp []byte
	if errMsg != "" {
		op, resp = wire.RespErr, []byte(errMsg)
	} else {
		switch f.Op {
		case wire.OpHello:
			resp = wire.EncodeHelloResp("fake")
		case wire.OpOpen:
			_, dim, _, bound, _, err := wire.DecodeOpen(f.Payload)
			if err != nil {
				op, resp = wire.RespErr, []byte(err.Error())
				break
			}
			if bound == wire.BoundUnset {
				bound = faster.BoundAsync
			}
			resp = wire.EncodeOpenResp(1, dim, 1, bound, "fake")
		case wire.OpAttach:
			s.attaches.Add(1)
		case wire.OpDetach:
		case wire.OpGet:
			_, rest, _ := wire.DecodeHandle(f.Payload)
			key, _, _ := wire.DecodeGet(rest)
			resp = wire.EncodeGetResp(true, fakeVal(s.dim, key))
		case wire.OpPeek:
			_, rest, _ := wire.DecodeHandle(f.Payload)
			key, _ := wire.DecodeKey(rest)
			resp = wire.EncodeGetResp(true, fakeVal(s.dim, key))
		case wire.OpGetBatch:
			_, rest, _ := wire.DecodeHandle(f.Payload)
			keys, _, _ := wire.DecodeGetBatch(rest, nil)
			resp = fakeBatchResp(s.dim, keys)
		case wire.OpPeekBatch:
			_, rest, _ := wire.DecodeHandle(f.Payload)
			keys, _ := wire.DecodeKeys(rest, nil)
			resp = fakeBatchResp(s.dim, keys)
		default:
			op, resp = wire.RespErr, []byte("fake: unhandled op")
		}
	}
	wmu.Lock()
	wire.WriteFrame(c, f.CorrID, op, resp)
	wmu.Unlock()
}

// fakeVal is the deterministic value the fake serves for a key: every
// byte is byte(key), so winners' payloads are checkable.
func fakeVal(dim int, key uint64) []byte {
	v := make([]byte, dim*4)
	for i := range v {
		v[i] = byte(key)
	}
	return v
}

func fakeBatchResp(dim int, keys []uint64) []byte {
	vs := dim * 4
	found := make([]bool, len(keys))
	vals := make([]byte, len(keys)*vs)
	for i, k := range keys {
		found[i] = true
		for j := 0; j < vs; j++ {
			vals[i*vs+j] = byte(k)
		}
	}
	return wire.EncodeGetBatchResp(found, vals)
}

func fakeClient(t *testing.T, s *fakeServer, opts Options) *Client {
	t.Helper()
	cl, err := Dial(s.ln.Addr().String(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func fakeSession(t *testing.T, cl *Client, id string, dim int, bound int64) (*Model, *Session) {
	t.Helper()
	m, err := cl.OpenModel(context.Background(), OpenSpec{ID: id, Dim: dim, Bound: bound})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.NewSessionCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return m, s
}

func pendingTotal(cl *Client) int {
	n := 0
	for _, cn := range cl.conns {
		cn.pmu.Lock()
		n += len(cn.pending)
		cn.pmu.Unlock()
	}
	return n
}

// waitDrained waits for every in-flight correlation entry across the pool
// to be consumed — the no-leak invariant for abandoned hedge losers.
func waitDrained(t *testing.T, cl *Client) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for pendingTotal(cl) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d pending entries never drained", pendingTotal(cl))
		}
		time.Sleep(time.Millisecond)
	}
}

func checkBatchVals(t *testing.T, keys []uint64, vals []byte, found []bool, vs int) {
	t.Helper()
	for i, k := range keys {
		if !found[i] {
			t.Fatalf("key %d not found", k)
		}
		for j := 0; j < vs; j++ {
			if vals[i*vs+j] != byte(k) {
				t.Fatalf("key %d byte %d = %d, want %d", k, j, vals[i*vs+j], byte(k))
			}
		}
	}
}

// TestHedgeWinsOnSlowPrimary pins the happy hedge path: a GETBATCH whose
// primary is scripted slow returns via the clock-free PEEKBATCH duplicate
// well before the primary's delay, the payload is the duplicate's, and
// the straggling primary drains without leaking its pending entry.
func TestHedgeWinsOnSlowPrimary(t *testing.T) {
	const dim = 2
	fs := newFakeServer(t, dim)
	fs.setDelay(wire.OpGetBatch, 80*time.Millisecond)
	cl := fakeClient(t, fs, Options{Conns: 2, HedgeDelay: 2 * time.Millisecond})
	_, s := fakeSession(t, cl, "m", dim, wire.BoundUnset) // fake answers ASP

	keys := []uint64{1, 2, 3}
	vals := make([]byte, len(keys)*dim*4)
	found := make([]bool, len(keys))
	start := time.Now()
	if err := s.GetBatch(keys, vals, found); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	checkBatchVals(t, keys, vals, found, dim*4)
	if hs := cl.HedgeStats(); hs.Issued != 1 || hs.Won != 1 {
		t.Fatalf("hedge stats %+v, want exactly one issued and won", hs)
	}
	if elapsed >= 80*time.Millisecond {
		t.Fatalf("hedged read took %s, no faster than the 80ms primary", elapsed)
	}
	// The late primary's response must be reaped: pending entry deleted by
	// the read loop, payload returned — no leak from the abandoned loser.
	waitDrained(t, cl)
}

// TestHedgeErrorDefersToPrimary pins the compatibility rule: a hedge
// answered with RespErr (e.g. a server predating PEEKBATCH) never wins —
// the caller still gets the primary's successful answer and the hedge is
// counted wasted.
func TestHedgeErrorDefersToPrimary(t *testing.T) {
	const dim = 2
	fs := newFakeServer(t, dim)
	fs.setDelay(wire.OpGetBatch, 40*time.Millisecond)
	fs.setErr(wire.OpPeekBatch, "fake: unknown opcode PEEKBATCH")
	cl := fakeClient(t, fs, Options{Conns: 2, HedgeDelay: 2 * time.Millisecond})
	_, s := fakeSession(t, cl, "m", dim, wire.BoundUnset)

	keys := []uint64{7, 8}
	vals := make([]byte, len(keys)*dim*4)
	found := make([]bool, len(keys))
	if err := s.GetBatch(keys, vals, found); err != nil {
		t.Fatalf("read failed even though the primary succeeded: %v", err)
	}
	checkBatchVals(t, keys, vals, found, dim*4)
	hs := cl.HedgeStats()
	if hs.Issued != 1 || hs.Won != 0 || hs.Wasted != 1 {
		t.Fatalf("hedge stats %+v, want the failed hedge issued and wasted, never won", hs)
	}
	waitDrained(t, cl)
}

// TestHedgeCtxCancelsBothAttempts pins cancellation: with both the
// primary and the hedge muted server-side, the caller's deadline ends the
// round trip (both attempts abandoned to the read loop) and closing the
// client does not hang on the orphaned entries.
func TestHedgeCtxCancelsBothAttempts(t *testing.T) {
	const dim = 2
	fs := newFakeServer(t, dim)
	fs.mute(wire.OpGetBatch)
	fs.mute(wire.OpPeekBatch)
	cl := fakeClient(t, fs, Options{Conns: 2, HedgeDelay: 2 * time.Millisecond})
	_, s := fakeSession(t, cl, "m", dim, wire.BoundUnset)

	keys := []uint64{1}
	vals := make([]byte, dim*4)
	found := make([]bool, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.GetBatchCtx(ctx, keys, vals, found)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %s", elapsed)
	}
	if hs := cl.HedgeStats(); hs.Issued != 1 {
		t.Fatalf("hedge stats %+v, want the hedge issued before the deadline", hs)
	}
	// Both attempts are in flight forever (the fake never answers); their
	// entries stay pending until Close fails them — the t.Cleanup Close
	// doubles as the no-hang check.
	if n := pendingTotal(cl); n != 2 {
		t.Fatalf("pending entries after cancel = %d, want both attempts", n)
	}
}

// TestClockedReadsNeverHedge pins admissibility: reads on a BSP (or any
// clocked) model must never hedge — a clocked read re-issued clock-free
// would weaken its consistency — and a bound retuned via SetBoundHint
// stops hedging immediately.
func TestClockedReadsNeverHedge(t *testing.T) {
	const dim = 2
	fs := newFakeServer(t, dim)
	fs.setDelay(wire.OpGet, 8*time.Millisecond)
	fs.setDelay(wire.OpGetBatch, 8*time.Millisecond)
	cl := fakeClient(t, fs, Options{Conns: 2, HedgeDelay: time.Millisecond})

	dst := make([]byte, dim*4)
	keys := []uint64{1, 2}
	vals := make([]byte, len(keys)*dim*4)
	found := make([]bool, len(keys))

	// BSP model: every read is slow enough to want a hedge; none may.
	_, bsp := fakeSession(t, cl, "bsp", dim, 0)
	for i := 0; i < 3; i++ {
		if _, err := bsp.Get(uint64(i), dst); err != nil {
			t.Fatal(err)
		}
	}
	if err := bsp.GetBatch(keys, vals, found); err != nil {
		t.Fatal(err)
	}
	if hs := cl.HedgeStats(); hs != (HedgeStats{}) {
		t.Fatalf("clocked reads hedged: %+v", hs)
	}

	// ASP model on the same pool: the same reads hedge (or are at least
	// counted suppressed when the bucket is dry).
	asp, aspSess := fakeSession(t, cl, "asp", dim, faster.BoundAsync)
	for i := 0; i < 3; i++ {
		if _, err := aspSess.Get(uint64(i), dst); err != nil {
			t.Fatal(err)
		}
	}
	hs := cl.HedgeStats()
	if hs.Issued+hs.Suppressed == 0 {
		t.Fatalf("admissible slow reads never attempted a hedge: %+v", hs)
	}

	// Retune the model to BSP: hedging stops at once.
	asp.SetBoundHint(0)
	before := cl.HedgeStats()
	for i := 0; i < 3; i++ {
		if _, err := aspSess.Get(uint64(i), dst); err != nil {
			t.Fatal(err)
		}
	}
	if after := cl.HedgeStats(); after != before {
		t.Fatalf("reads after a BSP bound hint still hedged: %+v -> %+v", before, after)
	}
}

// TestHedgeTokenBucketCapsDuplicates pins the pacing contract: when every
// admissible read wants a hedge, the bucket admits the burst plus ~10% of
// reads and suppresses the rest, so a melting-down server sees at most
// ~1.1x its offered load.
func TestHedgeTokenBucketCapsDuplicates(t *testing.T) {
	const dim = 2
	const workers, perWorker = 8, 12
	fs := newFakeServer(t, dim)
	fs.setDelay(wire.OpGet, 20*time.Millisecond) // PEEK stays instant: hedges win fast
	cl := fakeClient(t, fs, Options{Conns: 2, HedgeDelay: time.Millisecond})
	m, err := cl.OpenModel(context.Background(), OpenSpec{ID: "m", Dim: dim, Bound: wire.BoundUnset})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := m.NewSessionCtx(context.Background())
			if err != nil {
				errCh <- err
				return
			}
			defer s.Close()
			dst := make([]byte, dim*4)
			for i := 0; i < perWorker; i++ {
				if _, err := s.Get(uint64(w*perWorker+i), dst); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	const reads = workers * perWorker
	hs := cl.HedgeStats()
	if hs.Issued+hs.Suppressed != reads {
		t.Fatalf("attempts = %d (%+v), want every one of %d slow reads to cross the delay", hs.Issued+hs.Suppressed, hs, reads)
	}
	// Bucket math: a full burst (hedgeBurstTenths) plus one tenth banked
	// per read bounds the issuable hedges.
	maxIssued := int64((hedgeBurstTenths + reads) / hedgeCostTenths)
	if hs.Issued > maxIssued {
		t.Fatalf("issued %d hedges, bucket admits at most %d", hs.Issued, maxIssued)
	}
	if hs.Issued < hedgeBurstTenths/hedgeCostTenths {
		t.Fatalf("issued %d hedges, the burst alone covers %d", hs.Issued, hedgeBurstTenths/hedgeCostTenths)
	}
	if hs.Suppressed == 0 {
		t.Fatalf("no hedge suppressed across %d over-budget reads: %+v", reads, hs)
	}
	waitDrained(t, cl)
}

// TestAdaptiveHedgeDelayTracksTail pins the adaptive trigger: before any
// samples the fallback applies; once the pool's histogram holds a tail,
// the delay tracks its p99 (floored at hedgeMinDelay).
func TestAdaptiveHedgeDelayTracksTail(t *testing.T) {
	c := &Client{opts: Options{HedgeAdaptive: true}}
	if d := c.hedgeDelay(latency.OpGet); d != hedgeDefaultDelay {
		t.Fatalf("sampleless adaptive delay = %s, want fallback %s", d, hedgeDefaultDelay)
	}
	c = &Client{opts: Options{HedgeAdaptive: true, HedgeDelay: 7 * time.Millisecond}}
	if d := c.hedgeDelay(latency.OpGet); d != 7*time.Millisecond {
		t.Fatalf("sampleless adaptive delay = %s, want configured fallback 7ms", d)
	}
	for i := 0; i < 4*hedgeAdaptiveMinSamples; i++ {
		c.lat.Record(latency.OpGet, 5*time.Millisecond)
	}
	c.hedgeDelayTick.Store(0) // force a recompute on the next call
	d := c.hedgeDelay(latency.OpGet)
	if d < 4*time.Millisecond || d > 8*time.Millisecond {
		t.Fatalf("adaptive delay = %s, want ~p99 of the 5ms samples", d)
	}
	// A uniformly fast pool floors at hedgeMinDelay instead of hedging
	// every read that hits one scheduler hiccup.
	c = &Client{opts: Options{HedgeAdaptive: true}}
	for i := 0; i < 4*hedgeAdaptiveMinSamples; i++ {
		c.lat.Record(latency.OpGet, 5*time.Microsecond)
	}
	c.hedgeDelayTick.Store(0)
	if d := c.hedgeDelay(latency.OpGet); d != hedgeMinDelay {
		t.Fatalf("fast-pool adaptive delay = %s, want the %s floor", d, hedgeMinDelay)
	}
}

// TestSessionRecoversFromDeadConnection is the reconnect regression test:
// a session whose connection dies mid-life must heal transparently on its
// next operation — the pool slot redials (HELLO) and the session
// re-ATTACHes on the fresh connection — instead of failing every later
// request the way a session pinned to the dead *conn would.
func TestSessionRecoversFromDeadConnection(t *testing.T) {
	const dim = 2
	fs := newFakeServer(t, dim)
	cl := fakeClient(t, fs, Options{Conns: 1})
	_, s := fakeSession(t, cl, "m", dim, wire.BoundUnset)

	dst := make([]byte, dim*4)
	if _, err := s.Get(1, dst); err != nil {
		t.Fatal(err)
	}
	attachesBefore := fs.attaches.Load()

	// Kill the transport out from under the session and wait for the read
	// loop to notice: the conn is now poisoned, not merely idle.
	old := cl.conns[0]
	old.c.Close()
	<-old.done
	if !old.broken() {
		t.Fatal("closed connection not marked broken")
	}

	// The next read must succeed via redial + re-attach, not error.
	if _, err := s.Get(2, dst); err != nil {
		t.Fatalf("read after connection death: %v", err)
	}
	for j := range dst {
		if dst[j] != 2 {
			t.Fatalf("healed read byte %d = %d, want %d", j, dst[j], 2)
		}
	}
	if cl.conns[0] == old {
		t.Fatal("dead connection still occupies its pool slot")
	}
	if got := fs.attaches.Load(); got != attachesBefore+1 {
		t.Fatalf("server saw %d attaches, want %d (one re-ATTACH on the healed connection)",
			got, attachesBefore+1)
	}

	// Steady state on the healed connection: further ops reuse it without
	// another attach round trip.
	keys := []uint64{5, 6}
	vals := make([]byte, len(keys)*dim*4)
	found := make([]bool, len(keys))
	if err := s.GetBatch(keys, vals, found); err != nil {
		t.Fatal(err)
	}
	checkBatchVals(t, keys, vals, found, dim*4)
	if got := fs.attaches.Load(); got != attachesBefore+1 {
		t.Fatalf("healed session attached again: %d attaches", got)
	}
}

// countingConn counts Write calls on the underlying connection — with a
// bufio layer above it, exactly the flush syscalls. Each Write also
// sleeps ~a millisecond, modeling a network where the syscall is not
// free: while one flusher sleeps, the other writers pile up behind the
// frame lock, which is exactly the contention coalescing exists for (and
// it makes the test deterministic on a single-CPU runner, where zero-cost
// writes let every round trip finish before the next goroutine starts).
type countingConn struct {
	net.Conn
	writes *atomic.Int64
}

func (c *countingConn) Write(p []byte) (int, error) {
	c.writes.Add(1)
	time.Sleep(time.Millisecond)
	return c.Conn.Write(p)
}

// TestCoalescedClientWrites pins the tentpole write-path property against
// the real server: 64 concurrent pipelined requests on one connection
// coalesce their flushes — the connection sees far fewer Write calls than
// requests, instead of one flush per request.
func TestCoalescedClientWrites(t *testing.T) {
	const dim = 4
	const requests = 64
	dir := t.TempDir()
	reg := server.NewRegistry(server.RegistryConfig{
		DefaultShards: 1,
		DefaultBound:  -1,
		Name:          "coalesce-test",
		Opener: func(id string, dim, shards int, bound int64, engine string) (kv.Store, error) {
			return kv.OpenEngine(engine, kv.ShardedConfig{
				Dir: filepath.Join(dir, id), Shards: shards, ValueSize: dim * 4,
				RecordsPerPage: 64, MemoryBytes: 1 << 20, ExpectedKeys: 1 << 12,
				StalenessBound: bound,
			}, "coalesce-test")
		},
	})
	defer reg.Close()
	srv := server.New(server.Config{Registry: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveErr
	}()

	var writes atomic.Int64
	cl, err := Dial(ln.Addr().String(), Options{
		Conns: 1,
		dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			nc, err := net.DialTimeout("tcp", addr, timeout)
			if err != nil {
				return nil, err
			}
			return &countingConn{Conn: nc, writes: &writes}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	m, err := cl.OpenModel(context.Background(), OpenSpec{ID: "coalesce", Dim: dim, Bound: wire.BoundUnset})
	if err != nil {
		t.Fatal(err)
	}
	sessions := make([]*Session, requests)
	for i := range sessions {
		if sessions[i], err = m.NewSessionCtx(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	before := writes.Load()
	startCh := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, requests)
	val := make([]byte, dim*4)
	for i := range sessions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-startCh
			errCh <- sessions[i].Put(uint64(i), val)
		}(i)
	}
	close(startCh)
	wg.Wait()
	burst := writes.Load() - before
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range sessions {
		s.Close()
	}

	t.Logf("%d pipelined puts cost %d conn writes", requests, burst)
	if burst < 1 {
		t.Fatal("no connection writes counted; the counting conn is not wired")
	}
	// The contended window guarantees coalescing: while one writer holds
	// the frame lock, every queued writer has already announced itself, so
	// all but the last skip their flush. Half the request count is a loose
	// ceiling; in practice the burst costs a handful of writes.
	if burst >= requests/2 {
		t.Fatalf("%d pipelined puts cost %d conn writes; want them coalesced well below %d",
			requests, burst, requests/2)
	}
}
