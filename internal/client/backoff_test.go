package client

import (
	"context"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/server"
)

// TestRedialBackoff pins the redial breaker: when the pool's host dies,
// checkout attempts do not each dial — the first failure opens a jittered
// backoff window and the rest fail fast on the cached error, and the pool
// heals on the first checkout after the host returns.
func TestRedialBackoff(t *testing.T) {
	dir := t.TempDir()
	reg := server.NewRegistry(server.RegistryConfig{
		DefaultShards: 1,
		DefaultBound:  -1,
		Name:          "backoff-test",
		Opener: func(id string, dim, shards int, bound int64, engine string) (kv.Store, error) {
			return kv.OpenEngine(engine, kv.ShardedConfig{
				Dir: filepath.Join(dir, id), Shards: shards, ValueSize: dim * 4,
				RecordsPerPage: 64, MemoryBytes: 1 << 20, ExpectedKeys: 1 << 12,
				StalenessBound: bound,
			}, "backoff-test")
		},
	})
	defer reg.Close()
	srv := server.New(server.Config{Registry: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveErr
	}()

	var failDials atomic.Bool
	var mu sync.Mutex
	var live []net.Conn
	cl, err := Dial(ln.Addr().String(), Options{
		Conns:       1,
		DialTimeout: time.Second,
		dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			if failDials.Load() {
				return nil, &net.OpError{Op: "dial", Err: context.DeadlineExceeded}
			}
			nc, err := net.DialTimeout("tcp", addr, timeout)
			if err != nil {
				return nil, err
			}
			mu.Lock()
			live = append(live, nc)
			mu.Unlock()
			return nc, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Kill the host from the client's point of view: future dials fail and
	// the pooled connection is severed so its slot reads as broken.
	failDials.Store(true)
	mu.Lock()
	for _, nc := range live {
		nc.Close()
	}
	mu.Unlock()

	// Wait for the reader goroutine to mark the connection broken.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := cl.connAt(0); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pooled connection never went broken after close")
		}
		time.Sleep(time.Millisecond)
	}

	// A burst of checkouts against the dead host: every one must fail, and
	// almost all must be breaker fast-fails, not fresh dial attempts.
	const burst = 40
	var backoffErrs int
	for i := 0; i < burst; i++ {
		_, err := cl.connAt(0)
		if err == nil {
			t.Fatal("checkout succeeded against a dead host")
		}
		if strings.Contains(err.Error(), "backing off") {
			backoffErrs++
		}
	}
	retries, backoffs := cl.DialStats()
	if retries == 0 {
		t.Fatal("no redial was ever attempted")
	}
	if retries > burst/2 {
		t.Fatalf("redial tight loop: %d dials for %d checkouts", retries, burst)
	}
	if backoffs == 0 || backoffErrs == 0 {
		t.Fatalf("breaker never engaged: backoffs=%d backoffErrs=%d", backoffs, backoffErrs)
	}

	// Host returns: the pool must heal within a couple of backoff windows.
	failDials.Store(false)
	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, err := cl.connAt(0); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pool never healed after the host returned")
		}
		time.Sleep(5 * time.Millisecond)
	}
	healedRetries, _ := cl.DialStats()
	if healedRetries <= retries {
		t.Fatalf("healing did not record a retry: %d -> %d", retries, healedRetries)
	}
}
