package faultnet

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes every byte back.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(c, c); c.Close() }()
		}
	}()
	return ln.Addr().String()
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", p.Addr(), time.Second)
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestProxyForwards(t *testing.T) {
	p, err := New(echoServer(t))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	msg := []byte("hello through the proxy")
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: %q != %q", got, msg)
	}
	if p.Accepted() != 1 {
		t.Fatalf("Accepted = %d, want 1", p.Accepted())
	}
}

func TestProxyPartitionSeversAndRefuses(t *testing.T) {
	p, err := New(echoServer(t))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatalf("write: %v", err)
	}
	one := make([]byte, 1)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c, one); err != nil {
		t.Fatalf("pre-partition read: %v", err)
	}

	p.Partition()

	// The live connection is severed: reads fail promptly, not by timeout.
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(one); err == nil {
		t.Fatal("read on severed connection succeeded")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatalf("severed read timed out instead of failing: %v", err)
	}

	// New connections are accepted then dropped; the first read fails.
	c2, err := net.DialTimeout("tcp", p.Addr(), time.Second)
	if err == nil {
		c2.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := c2.Read(one); err == nil {
			t.Fatal("read through partition succeeded")
		}
		c2.Close()
	}

	// Heal restores service for redials.
	p.Heal()
	c3 := dialProxy(t, p)
	if _, err := c3.Write([]byte("y")); err != nil {
		t.Fatalf("post-heal write: %v", err)
	}
	c3.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c3, one); err != nil {
		t.Fatalf("post-heal read: %v", err)
	}
}

func TestProxyBlackholeStallsReads(t *testing.T) {
	p, err := New(echoServer(t))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	p.Blackhole()

	// Connect succeeds — that is the point of a blackhole — but no data
	// ever comes back; the read must ride its deadline.
	c := dialProxy(t, p)
	if _, err := c.Write([]byte("anyone home?")); err != nil {
		t.Fatalf("write: %v", err)
	}
	one := make([]byte, 1)
	c.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	_, err = c.Read(one)
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("blackholed read: got %v, want timeout", err)
	}
}

func TestProxyDropAfterCutsMidStream(t *testing.T) {
	p, err := New(echoServer(t))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	p.SetDropAfter(8)

	c := dialProxy(t, p)
	if _, err := c.Write([]byte("0123456789abcdef")); err != nil {
		t.Fatalf("write: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, _ := io.ReadAll(c) // connection must end (severed), not hang
	if len(got) > 8 {
		t.Fatalf("got %d bytes through a drop-after-8 proxy", len(got))
	}
}

func TestProxyDelay(t *testing.T) {
	p, err := New(echoServer(t))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	p.SetDelay(60 * time.Millisecond)

	c := dialProxy(t, p)
	start := time.Now()
	if _, err := c.Write([]byte("z")); err != nil {
		t.Fatalf("write: %v", err)
	}
	one := make([]byte, 1)
	c.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := io.ReadFull(c, one); err != nil {
		t.Fatalf("read: %v", err)
	}
	// One byte crosses the proxy twice (in and out), each leg delayed.
	if el := time.Since(start); el < 100*time.Millisecond {
		t.Fatalf("round trip took %v, want >= 100ms with 60ms per-leg delay", el)
	}
}
