// Package faultnet is a fault-injection proxy for the cluster test suite:
// a TCP forwarder that sits between a client (or peer) and one real
// mlkv-server listener and misbehaves on command. Tests front a node's
// advertised address with a Proxy and then blackhole it (accept
// connections but forward nothing — the shape of a wedged host, which is
// what failure detection must survive, unlike a closed port whose RST
// fails fast), delay every byte, drop each connection after N forwarded
// bytes, or partition it outright. Everything is reversible: Heal()
// restores clean forwarding for new connections.
//
// The proxy is deliberately one-per-node rather than one-per-pair: on
// loopback every peer dials from 127.0.0.1, so source-address pair
// discrimination is impossible anyway. A test that wants an asymmetric
// partition gives each node its own Proxy and partitions a subset —
// traffic *to* a proxied node is cut while that node's own outbound
// dials (to unproxied peers) still flow, which is exactly the one-way
// partition the detector's quorum rule exists for.
package faultnet

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy forwards TCP connections from Addr() to a target address,
// injecting configured faults. The zero value is not usable; call New.
type Proxy struct {
	ln     net.Listener
	target string

	mu     sync.Mutex
	conns  map[*proxyConn]struct{}
	closed bool

	// Fault switches. partitioned/blackholed gate new connections;
	// delay/dropAfter shape the forwarding of healthy ones.
	partitioned bool
	blackholed  bool
	delay       time.Duration
	dropAfter   int64 // bytes per connection per direction; 0 = unlimited

	accepted atomic.Int64
	refused  atomic.Int64
}

// New starts a proxy on a fresh loopback port forwarding to target.
func New(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, conns: map[*proxyConn]struct{}{}}
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients should dial instead of the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Accepted counts connections accepted (including blackholed ones).
func (p *Proxy) Accepted() int64 { return p.accepted.Load() }

// Refused counts connections dropped by an active partition.
func (p *Proxy) Refused() int64 { return p.refused.Load() }

// Partition cuts the node off: every live proxied connection is severed
// and new connections are accepted then immediately closed (a dead-host
// RST shape). Use Blackhole for the nastier accept-and-say-nothing shape.
func (p *Proxy) Partition() {
	p.mu.Lock()
	p.partitioned = true
	p.blackholed = false
	p.mu.Unlock()
	p.dropAll()
}

// Blackhole keeps accepting connections but never forwards a byte in
// either direction — the failure mode that distinguishes a timeout-based
// detector from one that only notices closed ports. Live connections are
// severed so in-flight traffic stalls the same way new traffic does.
func (p *Proxy) Blackhole() {
	p.mu.Lock()
	p.blackholed = true
	p.partitioned = false
	p.mu.Unlock()
	p.dropAll()
}

// Heal restores clean forwarding for new connections (connections severed
// by a fault stay dead — TCP has no resurrection — but redials succeed).
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.partitioned = false
	p.blackholed = false
	p.delay = 0
	p.dropAfter = 0
	p.mu.Unlock()
}

// SetTarget re-homes the proxy: connections opened after the call forward
// to addr instead. This is how a test "restarts" a node on a fresh
// listener while the cluster keeps dialing the same advertised address.
func (p *Proxy) SetTarget(addr string) {
	p.mu.Lock()
	p.target = addr
	p.mu.Unlock()
}

// SetDelay injects d of extra latency before each forwarded chunk in each
// direction of every connection (new and existing).
func (p *Proxy) SetDelay(d time.Duration) {
	p.mu.Lock()
	p.delay = d
	p.mu.Unlock()
}

// SetDropAfter severs each connection after n forwarded bytes per
// direction — the mid-frame cut that exercises partial-write recovery.
// Applies to connections opened after the call.
func (p *Proxy) SetDropAfter(n int64) {
	p.mu.Lock()
	p.dropAfter = n
	p.mu.Unlock()
}

// Close stops the listener and severs every proxied connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.dropAll()
	return err
}

// dropAll severs every live proxied connection.
func (p *Proxy) dropAll() {
	p.mu.Lock()
	conns := make([]*proxyConn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.sever()
	}
}

func (p *Proxy) acceptLoop() {
	for {
		down, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		closed, part, black := p.closed, p.partitioned, p.blackholed
		dropAfter, target := p.dropAfter, p.target
		p.mu.Unlock()
		switch {
		case closed, part:
			p.refused.Add(1)
			_ = down.Close()
			continue
		case black:
			// Accept and hold: the dialer's connect succeeds, then every
			// read and write stalls until its own deadline fires.
			p.accepted.Add(1)
			pc := &proxyConn{p: p, down: down}
			p.track(pc)
			continue
		}
		p.accepted.Add(1)
		up, err := net.DialTimeout("tcp", target, 5*time.Second)
		if err != nil {
			_ = down.Close()
			continue
		}
		pc := &proxyConn{p: p, down: down, up: up, dropAfter: dropAfter}
		p.track(pc)
		go pc.pump(down, up)
		go pc.pump(up, down)
	}
}

func (p *Proxy) track(c *proxyConn) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.sever()
		return
	}
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(c *proxyConn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// proxyConn is one proxied connection pair (up may be nil when
// blackholed — the downstream socket is held open, never serviced).
type proxyConn struct {
	p         *Proxy
	down, up  net.Conn
	dropAfter int64
	severed   atomic.Bool
}

func (c *proxyConn) sever() {
	if !c.severed.CompareAndSwap(false, true) {
		return
	}
	_ = c.down.Close()
	if c.up != nil {
		_ = c.up.Close()
	}
	c.p.untrack(c)
}

// pump copies src→dst applying the proxy's delay and this connection's
// drop-after budget. Either direction ending severs the pair: half-open
// proxied connections would hide failures the tests are trying to inject.
func (c *proxyConn) pump(src, dst net.Conn) {
	defer c.sever()
	var forwarded int64
	buf := make([]byte, 32<<10)
	for {
		limit := int64(len(buf))
		if c.dropAfter > 0 {
			if remain := c.dropAfter - forwarded; remain < limit {
				limit = remain
			}
		}
		n, err := src.Read(buf[:limit])
		if n > 0 {
			c.p.mu.Lock()
			delay := c.p.delay
			c.p.mu.Unlock()
			if delay > 0 {
				time.Sleep(delay)
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
			forwarded += int64(n)
			if c.dropAfter > 0 && forwarded >= c.dropAfter {
				return // budget spent: cut the connection mid-stream
			}
		}
		if err != nil {
			if !errors.Is(err, io.EOF) && !c.severed.Load() {
				_ = err // injected faults make read errors routine
			}
			return
		}
	}
}
