package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/llm-db/mlkv-go/internal/latency"
)

// Result is one machine-readable measurement: the unit every BENCH_*.json
// file is built from, so the perf trajectory of the repo is diffable
// across commits instead of living in prose. OpsPerSec is the
// experiment's headline rate (keys/s for read sweeps, samples/s for
// training); NsPerOp/AllocsPerOp/BytesPerOp come from testing.Benchmark
// where the experiment runs one (zero otherwise); Config records the
// knobs that produced the number.
type Result struct {
	Name        string  `json:"name"`
	OpsPerSec   float64 `json:"ops_per_sec,omitempty"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Per-operation latency percentiles in microseconds, from the
	// measurement loop's own latency.Histogram (one "operation" is
	// whatever the experiment measures per iteration: a Get, a whole
	// GetBatch, a training step). Zero when the experiment's op count is
	// zero — use SetLatency so a recorded histogram fills all four.
	P50Us  float64        `json:"p50_us"`
	P90Us  float64        `json:"p90_us"`
	P99Us  float64        `json:"p99_us"`
	P999Us float64        `json:"p999_us"`
	Config map[string]any `json:"config,omitempty"`
}

// SetLatency fills the percentile fields from a histogram snapshot.
func (r *Result) SetLatency(s latency.Snapshot) {
	r.P50Us = latency.Us(s.P50)
	r.P90Us = latency.Us(s.P90)
	r.P99Us = latency.Us(s.P99)
	r.P999Us = latency.Us(s.P999)
}

// resultFile is the BENCH_<experiment>.json layout.
type resultFile struct {
	Experiment string   `json:"experiment"`
	Scale      string   `json:"scale"`
	Results    []Result `json:"results"`
}

// Record appends one measurement to the running experiment's result set.
func (e *Env) Record(r Result) {
	e.results = append(e.results, r)
}

// writeJSON writes the results recorded since the experiment started to
// BENCH_<experiment>.json under e.JSONDir (no-op when JSONDir is unset or
// nothing was recorded).
func (e *Env) writeJSON(experiment string) error {
	if e.JSONDir == "" || len(e.results) == 0 {
		return nil
	}
	out := resultFile{Experiment: experiment, Scale: e.Scale.Name, Results: e.results}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(e.JSONDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(e.JSONDir, fmt.Sprintf("BENCH_%s.json", experiment))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	e.printf("wrote %s (%d results)\n", path, len(e.results))
	return nil
}
