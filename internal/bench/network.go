package bench

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/llm-db/mlkv-go/internal/driver"
	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/latency"
	"github.com/llm-db/mlkv-go/internal/server"
	"github.com/llm-db/mlkv-go/internal/util"
	"github.com/llm-db/mlkv-go/internal/ycsb"
)

// NetworkSweep measures what the serving layer costs: the same sharded
// store is driven first in-process and then through mlkv-server over
// loopback, at batch sizes 1, 32, and 256 keys per GetBatch. Batch size 1
// pays one framed round trip per key and shows the wire's floor; at 256
// keys per frame the round trip amortizes across the batch and the server
// fans the frame into the shards as one batched read, which is what lets
// remote throughput approach the in-process number.
func (e *Env) NetworkSweep() error {
	shards := e.Shards
	if shards <= 1 {
		shards = 4
	}
	workers := e.Scale.Workers
	if workers < 2 {
		workers = 2
	}
	vs := e.Scale.ValueSizes[0]
	dur := e.Scale.Duration / 2
	if dur < 200*time.Millisecond {
		dur = 200 * time.Millisecond
	}
	records := e.Scale.YCSBRecords

	e.printf("== Network: in-process vs loopback mlkv-server, zipfian GetBatch ==\n")
	e.printf("records=%d shards=%d workers=%d valuesize=%d buffer=%dKB\n",
		records, shards, workers, vs, e.Scale.BufferKBs[0])

	store, err := kv.OpenFasterShards(kv.ShardedConfig{
		Dir: e.dir("network"), Shards: shards, ValueSize: vs,
		MemoryBytes: int64(e.Scale.BufferKBs[0]) << 10, ExpectedKeys: records,
		StalenessBound: faster.BoundAsync,
	}, "mlkv")
	if err != nil {
		return err
	}
	defer store.Close()
	if err := ycsb.Load(store, records, 42); err != nil {
		return err
	}

	reg := server.NewRegistry(server.RegistryConfig{})
	if _, err := reg.Add("network", vs/4, store); err != nil {
		return err
	}
	srv := server.New(server.Config{Registry: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveErr
	}()
	cl, err := driver.DialKV(ln.Addr().String(), "network", vs/4, workers)
	if err != nil {
		return err
	}
	defer cl.Close()

	e.printf("%-8s %14s %14s %8s\n", "batch", "local-keys/s", "remote-keys/s", "ratio")
	for _, batch := range []int{1, 32, 256} {
		local, localLat, err := measureGetBatch(store, records, batch, workers, dur)
		if err != nil {
			return err
		}
		remote, remoteLat, err := measureGetBatch(cl, records, batch, workers, dur)
		if err != nil {
			return err
		}
		e.printf("%-8d %14.0f %14.0f %7.2fx  (p99 %6.0fµs vs %6.0fµs)\n",
			batch, local, remote, local/remote,
			latency.Us(localLat.P99), latency.Us(remoteLat.P99))
		cfg := map[string]any{
			"records": records, "shards": shards, "workers": workers,
			"valuesize": vs, "buffer_kb": e.Scale.BufferKBs[0], "batch": batch,
		}
		lr := Result{Name: fmt.Sprintf("getbatch/batch=%d/local", batch), OpsPerSec: local, Config: cfg}
		lr.SetLatency(localLat)
		e.Record(lr)
		rr := Result{Name: fmt.Sprintf("getbatch/batch=%d/remote", batch), OpsPerSec: remote, Config: cfg}
		rr.SetLatency(remoteLat)
		e.Record(rr)
	}
	return nil
}

// measureGetBatch runs workers sessions issuing zipfian GetBatch calls of
// the given batch size for roughly dur, returning keys read per second
// and the per-call latency distribution across every worker.
func measureGetBatch(store kv.Store, records uint64, batch, workers int, dur time.Duration) (float64, latency.Snapshot, error) {
	vs := store.ValueSize()
	var lat latency.Histogram
	var keysRead atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := store.NewSession()
			if err != nil {
				fail(err)
				return
			}
			defer s.Close()
			zipf := util.NewScrambledZipf(util.NewRNG(uint64(97+w)), records, 0.99)
			keys := make([]uint64, batch)
			vals := make([]byte, batch*vs)
			found := make([]bool, batch)
			for time.Since(start) < dur {
				for i := range keys {
					keys[i] = zipf.Next()
				}
				opStart := time.Now()
				if err := kv.SessionGetBatch(s, vs, keys, vals, found); err != nil {
					fail(err)
					return
				}
				lat.Since(opStart)
				keysRead.Add(int64(batch))
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, latency.Snapshot{}, fmt.Errorf("bench: network measure: %w", firstErr)
	}
	elapsed := time.Since(start).Seconds()
	return float64(keysRead.Load()) / elapsed, lat.Snapshot(), nil
}
