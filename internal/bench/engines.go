package bench

import (
	"fmt"
	"time"

	mlkv "github.com/llm-db/mlkv-go"
	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/train"
	"github.com/llm-db/mlkv-go/internal/ycsb"
)

// benchEngines is the bake-off roster: every engine the seam can put
// behind a model, in the order the tables print.
var benchEngines = []string{kv.EngineFaster, kv.EngineLSM, kv.EngineBPTree}

// EngineSweep races the three storage engines behind the same seam on the
// same workloads: YCSB read-heavy and update-heavy over kv.OpenEngine
// (exactly what mlkv-server runs per model), a batched DLRM training leg
// over the lifted kv backends, then a batched Zipf read leg through the
// public API with WithEngine — the path a user's bake-off takes. Clock
// machinery is off everywhere (ASP / no bound), so the numbers isolate
// the engines' data structures, not staleness waits.
func (e *Env) EngineSweep() error {
	s := e.Scale
	records := s.YCSBRecords
	threads := s.Workers
	if threads < 2 {
		threads = 2
	}
	bufKB := s.BufferKBs[0]
	vs := s.Dim * 4

	e.printf("== Engines: faster vs lsm vs bptree on identical workloads ==\n")
	e.printf("records=%d dim=%d buffer=%dKB threads=%d shards=4\n", records, s.Dim, bufKB, threads)

	for _, wl := range []struct {
		name     string
		readFrac float64
	}{
		{"read-heavy", 0.95},
		{"update-heavy", 0.5},
	} {
		e.printf("-- ycsb %s (%.0f%% reads, zipf) --\n", wl.name, wl.readFrac*100)
		e.printf("%-8s %14s %10s\n", "engine", "ops/s", "vs-faster")
		var base float64
		for _, eng := range benchEngines {
			bound := int64(faster.BoundAsync)
			if kv.ClockFree(eng) {
				bound = -1
			}
			store, err := kv.OpenEngine(eng, kv.ShardedConfig{
				Dir: e.dir("engines-" + eng), Shards: 4, ValueSize: vs,
				MemoryBytes: int64(bufKB) << 10, RecordsPerPage: 256,
				ExpectedKeys: records, StalenessBound: bound,
			}, eng)
			if err != nil {
				return err
			}
			res, err := ycsb.Run(ycsb.Options{
				Store: store, Records: records, Threads: threads,
				ReadFraction: wl.readFrac, Dist: ycsb.Zipfian,
				MaxOps: s.YCSBOps, Seed: 42,
			})
			if cerr := store.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			if eng == kv.EngineFaster {
				base = res.Throughput
			}
			e.printf("%-8s %14.0f %9.2fx\n", eng, res.Throughput, res.Throughput/base)
			r := Result{
				Name:      fmt.Sprintf("ycsb/%s/engine=%s", wl.name, eng),
				OpsPerSec: res.Throughput,
				Config: map[string]any{
					"records": records, "value_size": vs, "buffer_kb": bufKB,
					"threads": threads, "shards": 4, "read_fraction": wl.readFrac,
					"dist": "zipfian", "ops": res.Ops,
				},
			}
			r.SetLatency(res.OpLat)
			e.Record(r)
		}
	}
	if err := e.engineSweepTrain(); err != nil {
		return err
	}
	return e.engineSweepAPI()
}

// engineSweepTrain is the training leg: batched async DLRM over each
// engine behind the same lifted kv seam, so the table shows what the
// engine choice costs an actual gather/scatter training loop rather than
// a synthetic point workload.
func (e *Env) engineSweepTrain() error {
	s := e.Scale
	bufKB := s.BufferKBs[0]
	keys := s.CTRCard * uint64(s.CTRFields)

	e.printf("-- train: DLRM batched gather/scatter (async, batch=32) --\n")
	e.printf("%-8s %14s %10s\n", "engine", "samples/s", "vs-faster")
	var base float64
	for _, eng := range benchEngines {
		bound := int64(faster.BoundAsync)
		if kv.ClockFree(eng) {
			bound = -1
		}
		store, err := kv.OpenEngine(eng, kv.ShardedConfig{
			Dir: e.dir("engines-train-" + eng), Shards: 4, ValueSize: s.Dim * 4,
			MemoryBytes: int64(bufKB) << 10, RecordsPerPage: 256,
			ExpectedKeys: keys, StalenessBound: bound,
		}, eng)
		if err != nil {
			return err
		}
		res, err := train.TrainCTR(e.ctrOpts(train.NewKVBackend(store, s.Dim, e.ctrInit()), train.ModeAsync, 0))
		if cerr := store.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		if eng == kv.EngineFaster {
			base = res.Throughput
		}
		e.printf("%-8s %14.0f %9.2fx\n", eng, res.Throughput, res.Throughput/base)
		// Percentiles here are per-minibatch embedding time (gather +
		// scatter), the storage-facing slice of each training step.
		r := Result{
			Name:      fmt.Sprintf("train-ctr/engine=%s", eng),
			OpsPerSec: res.Throughput,
			Config: map[string]any{
				"keys": keys, "dim": s.Dim, "buffer_kb": bufKB, "shards": 4,
				"workers": s.Workers, "batch": 32, "mode": "async",
				"samples": res.Samples,
			},
		}
		r.SetLatency(res.EmbLat)
		e.Record(r)
	}
	return nil
}

// engineSweepAPI is the public-API leg: one local DB, one model per
// engine via WithEngine, batched Zipf(0.99) reads — the one-liner a user
// runs to pick an engine, measured end to end through the driver seam.
func (e *Env) engineSweepAPI() error {
	s := e.Scale
	records := s.YCSBRecords
	dim := s.Dim
	workers := s.Workers
	if workers < 2 {
		workers = 2
	}
	dur := s.Duration / 2
	if dur < 200*time.Millisecond {
		dur = 200 * time.Millisecond
	}
	const batch = 256

	db, err := mlkv.Connect(e.dir("engines-api"))
	if err != nil {
		return err
	}
	defer db.Close()

	e.printf("-- public API: db.Open(id, dim, WithEngine(...)), batch=%d zipf reads --\n", batch)
	e.printf("%-8s %14s %10s\n", "engine", "keys/s", "vs-faster")
	var base float64
	for _, eng := range benchEngines {
		// ASP everywhere: non-blocking on the hybrid log, a no-op on the
		// clock-free engines, so no cell pays staleness waits.
		m, err := db.Open("engine-"+eng, dim,
			mlkv.WithEngine(eng), mlkv.WithStalenessBound(mlkv.ASP))
		if err != nil {
			return err
		}
		sess := func() (sweepSession, error) { return m.NewSession() }
		if err := loadKeys(sess, records, dim); err != nil {
			m.Close()
			return err
		}
		rate, lat, err := measureZipf(sess, records, dim, batch, workers, dur, 307)
		if cerr := m.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		if eng == kv.EngineFaster {
			base = rate
		}
		e.printf("%-8s %14.0f %9.2fx\n", eng, rate, rate/base)
		r := Result{
			Name:      fmt.Sprintf("api-read/engine=%s", eng),
			OpsPerSec: rate,
			Config: map[string]any{
				"records": records, "dim": dim, "workers": workers,
				"batch": batch, "zipf": 0.99, "bound": "asp",
			},
		}
		r.SetLatency(lat)
		e.Record(r)
	}
	return nil
}
