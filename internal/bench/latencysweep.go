package bench

import (
	"context"
	"fmt"
	"net"
	"time"

	mlkv "github.com/llm-db/mlkv-go"
	"github.com/llm-db/mlkv-go/internal/core"
	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/latency"
	"github.com/llm-db/mlkv-go/internal/server"
	"github.com/llm-db/mlkv-go/internal/util"
)

// LatencySweep is the tail-latency map of the read path: the same
// Zipf(0.99) workload as the cache sweep, swept across offered load
// (worker count × batch size) on both tiers — the in-process core.Table
// and a loopback mlkv-server — with the staleness-aware hot tier off and
// on. Throughput sweeps answer "how fast"; this one answers "how late":
// the p99/p999 columns show where queueing starts (rising workers), what
// a framed round trip costs at the tail (local vs remote at batch=1),
// and how much of the tail the hot tier absorbs (cache on vs off).
func (e *Env) LatencySweep() error {
	s := e.Scale
	records := s.YCSBRecords
	dim := s.Dim
	entries := int(records / 4)
	bufKB := s.BufferKBs[0]
	dur := s.Duration / 4
	if dur < 150*time.Millisecond {
		dur = 150 * time.Millisecond
	}
	workerPoints := s.Threads

	e.printf("== Latency: tail of the Zipf read path vs offered load (ASP) ==\n")
	e.printf("records=%d dim=%d buffer=%dKB tier=%d entries dur=%s/cell\n",
		records, dim, bufKB, entries, dur)

	measure := func(tier string, cacheEntries int, newSess func() (sweepSession, error), seed0 uint64, extra map[string]any) error {
		e.printf("-- %s cache=%d --\n", tier, cacheEntries)
		e.printf("%-8s %-8s %14s %10s %10s %10s\n",
			"workers", "batch", "keys/s", "p50-µs", "p99-µs", "p999-µs")
		for _, batch := range []int{1, 256} {
			for _, workers := range workerPoints {
				rate, lat, err := measureZipf(newSess, records, dim, batch, workers, dur, seed0+uint64(batch*1000+workers))
				if err != nil {
					return err
				}
				e.printf("%-8d %-8d %14.0f %10.1f %10.1f %10.1f\n",
					workers, batch, rate,
					latency.Us(lat.P50), latency.Us(lat.P99), latency.Us(lat.P999))
				cfg := map[string]any{
					"records": records, "dim": dim, "buffer_kb": bufKB,
					"workers": workers, "batch": batch, "bound": "asp",
					"cache_entries": cacheEntries, "zipf": 0.99,
					"remote": tier == "remote" || tier == "remote-hedge", "ops": lat.Count,
				}
				for k, v := range extra {
					cfg[k] = v
				}
				r := Result{
					Name:      fmt.Sprintf("latency/%s/cache=%d/batch=%d/workers=%d", tier, cacheEntries, batch, workers),
					OpsPerSec: rate,
					Config:    cfg,
				}
				r.SetLatency(lat)
				e.Record(r)
			}
		}
		return nil
	}

	// Local tier: the core table, cache off then on.
	for _, cacheEntries := range []int{0, entries} {
		tbl, err := core.OpenTable(core.Options{
			Dir: e.dir("latency"), Dim: dim, StalenessBound: core.BoundASP,
			MemoryBytes: int64(bufKB) << 10, RecordsPerPage: 256,
			ExpectedKeys: records, CacheEntries: cacheEntries,
		})
		if err != nil {
			return err
		}
		tableSess := func() (sweepSession, error) { return tbl.NewSession() }
		if err := loadKeys(tableSess, records, dim); err != nil {
			tbl.Close()
			return err
		}
		err = measure("local", cacheEntries, tableSess, 401, nil)
		tbl.Close()
		if err != nil {
			return err
		}
	}

	if err := e.flushPaceLeg(measure); err != nil {
		return err
	}

	// Remote tier: loopback mlkv-server, client-side tier off then on.
	// batch=1 here pays one framed round trip per key — the wire's tail
	// floor — which is exactly what the cache-on rows then erase.
	reg := server.NewRegistry(server.RegistryConfig{
		DefaultBound: faster.BoundAsync,
		Opener: func(id string, d, shards int, bound int64, engine string) (kv.Store, error) {
			return kv.OpenFasterShards(kv.ShardedConfig{
				Dir: e.dir("latency-remote"), Shards: shards, ValueSize: d * 4,
				MemoryBytes: int64(bufKB) << 10, RecordsPerPage: 256,
				ExpectedKeys: records, StalenessBound: bound,
			}, "mlkv")
		},
	})
	defer reg.Close()
	srv := server.New(server.Config{Registry: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveErr
	}()
	maxWorkers := workerPoints[len(workerPoints)-1]
	db, err := mlkv.Connect(mlkv.Scheme+ln.Addr().String(), mlkv.WithConns(maxWorkers))
	if err != nil {
		return err
	}
	defer db.Close()
	for _, cacheEntries := range []int{0, entries} {
		opts := []mlkv.Option{mlkv.WithStalenessBound(mlkv.ASP)}
		if cacheEntries > 0 {
			opts = append(opts, mlkv.WithCache(cacheEntries))
		}
		m, err := db.Open(fmt.Sprintf("latency-c%d", cacheEntries), dim, opts...)
		if err != nil {
			return err
		}
		modelSess := func() (sweepSession, error) { return m.NewSession() }
		if err := loadKeys(modelSess, records, dim); err != nil {
			m.Close()
			return err
		}
		err = measure("remote", cacheEntries, modelSess, 701, nil)
		m.Close()
		if err != nil {
			return err
		}
	}

	// Hedged remote leg: the exact harness of the cache=0 remote rows —
	// same server, same workload, same seeds — with read hedging on, so
	// the remote/cache=0 vs remote-hedge/cache=0 delta is attributable to
	// hedging (plus the coalesced write path both legs share). The model
	// runs ASP, so every read is hedge-admissible.
	hedgeOpts := []mlkv.ConnectOption{mlkv.WithConns(maxWorkers), mlkv.WithAdaptiveHedge()}
	hedgeCfg := map[string]any{"hedge": "adaptive"}
	if e.HedgeDelay > 0 {
		hedgeOpts = []mlkv.ConnectOption{mlkv.WithConns(maxWorkers), mlkv.WithHedge(e.HedgeDelay)}
		hedgeCfg = map[string]any{"hedge": e.HedgeDelay.String()}
	}
	hdb, err := mlkv.Connect(mlkv.Scheme+ln.Addr().String(), hedgeOpts...)
	if err != nil {
		return err
	}
	defer hdb.Close()
	hm, err := hdb.Open("latency-c0", dim, mlkv.WithStalenessBound(mlkv.ASP))
	if err != nil {
		return err
	}
	defer hm.Close()
	hedgeSess := func() (sweepSession, error) { return hm.NewSession() }
	if err := measure("remote-hedge", 0, hedgeSess, 701, hedgeCfg); err != nil {
		return err
	}
	if st, err := hm.StatsCtx(context.Background()); err == nil {
		e.printf("hedges: issued=%d won=%d wasted=%d suppressed=%d\n",
			st.HedgedReads, st.HedgeWins, st.HedgeWasted, st.HedgeSuppressed)
	}
	return nil
}

// flushPaceLeg maps the read tail under concurrent flush pressure: the
// same Zipf read workload, but with a background writer continuously
// pushing fresh pages at a table whose buffer is too small to hold them,
// so the log flusher runs throughout the measurement. Measured twice —
// flusher unpaced, then paced — the p99 delta is what FlushPace buys:
// flush writes smeared over time instead of bursting under the reads.
func (e *Env) flushPaceLeg(measure func(tier string, cacheEntries int, newSess func() (sweepSession, error), seed0 uint64, extra map[string]any) error) error {
	s := e.Scale
	records := s.YCSBRecords
	dim := s.Dim
	// A deliberately tight buffer: an eighth of the normal sweep point,
	// so the writer's appends spill pages continuously.
	bufKB := s.BufferKBs[0] / 8
	if bufKB < 64 {
		bufKB = 64
	}
	const pace = 500 * time.Microsecond
	for _, flushPace := range []time.Duration{0, pace} {
		tbl, err := core.OpenTable(core.Options{
			Dir: e.dir("latency-flush"), Dim: dim, StalenessBound: core.BoundASP,
			MemoryBytes: int64(bufKB) << 10, RecordsPerPage: 256,
			ExpectedKeys: records, FlushPace: flushPace,
		})
		if err != nil {
			return err
		}
		tableSess := func() (sweepSession, error) { return tbl.NewSession() }
		if err := loadKeys(tableSess, records, dim); err != nil {
			tbl.Close()
			return err
		}
		stop := make(chan struct{})
		writerDone := make(chan error, 1)
		go func() {
			writerDone <- flushWriter(tableSess, records, dim, stop)
		}()
		tag := fmt.Sprintf("local-flush/pace=%dus", flushPace.Microseconds())
		err = measure(tag, 0, tableSess, 877, map[string]any{
			"flush_pace_us": flushPace.Microseconds(), "concurrent_writer": true,
		})
		close(stop)
		werr := <-writerDone
		ts := tbl.TableStats()
		e.printf("flush: pages=%d group-commits=%d pace-stalls=%d\n",
			ts.FlushedPages, ts.GroupCommits, ts.FlushPaceStalls)
		tbl.Close()
		if err != nil {
			return err
		}
		if werr != nil {
			return werr
		}
	}
	return nil
}

// flushWriter streams PutBatch traffic across the key space until stop
// closes, keeping the log tail moving and the flusher busy.
func flushWriter(newSess func() (sweepSession, error), records uint64, dim int, stop <-chan struct{}) error {
	sess, err := newSess()
	if err != nil {
		return err
	}
	defer sess.Close()
	const chunk = 256
	keys := make([]uint64, chunk)
	vals := make([]float32, chunk*dim)
	r := util.NewRNG(911)
	for i := range vals {
		vals[i] = r.Float32()
	}
	next := uint64(0)
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		for i := range keys {
			keys[i] = next % records
			next++
		}
		if err := sess.PutBatch(keys, vals); err != nil {
			return err
		}
	}
}
