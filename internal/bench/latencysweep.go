package bench

import (
	"context"
	"fmt"
	"net"
	"time"

	mlkv "github.com/llm-db/mlkv-go"
	"github.com/llm-db/mlkv-go/internal/core"
	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/latency"
	"github.com/llm-db/mlkv-go/internal/server"
)

// LatencySweep is the tail-latency map of the read path: the same
// Zipf(0.99) workload as the cache sweep, swept across offered load
// (worker count × batch size) on both tiers — the in-process core.Table
// and a loopback mlkv-server — with the staleness-aware hot tier off and
// on. Throughput sweeps answer "how fast"; this one answers "how late":
// the p99/p999 columns show where queueing starts (rising workers), what
// a framed round trip costs at the tail (local vs remote at batch=1),
// and how much of the tail the hot tier absorbs (cache on vs off).
func (e *Env) LatencySweep() error {
	s := e.Scale
	records := s.YCSBRecords
	dim := s.Dim
	entries := int(records / 4)
	bufKB := s.BufferKBs[0]
	dur := s.Duration / 4
	if dur < 150*time.Millisecond {
		dur = 150 * time.Millisecond
	}
	workerPoints := s.Threads

	e.printf("== Latency: tail of the Zipf read path vs offered load (ASP) ==\n")
	e.printf("records=%d dim=%d buffer=%dKB tier=%d entries dur=%s/cell\n",
		records, dim, bufKB, entries, dur)

	measure := func(tier string, cacheEntries int, newSess func() (sweepSession, error), seed0 uint64) error {
		e.printf("-- %s cache=%d --\n", tier, cacheEntries)
		e.printf("%-8s %-8s %14s %10s %10s %10s\n",
			"workers", "batch", "keys/s", "p50-µs", "p99-µs", "p999-µs")
		for _, batch := range []int{1, 256} {
			for _, workers := range workerPoints {
				rate, lat, err := measureZipf(newSess, records, dim, batch, workers, dur, seed0+uint64(batch*1000+workers))
				if err != nil {
					return err
				}
				e.printf("%-8d %-8d %14.0f %10.1f %10.1f %10.1f\n",
					workers, batch, rate,
					latency.Us(lat.P50), latency.Us(lat.P99), latency.Us(lat.P999))
				r := Result{
					Name:      fmt.Sprintf("latency/%s/cache=%d/batch=%d/workers=%d", tier, cacheEntries, batch, workers),
					OpsPerSec: rate,
					Config: map[string]any{
						"records": records, "dim": dim, "buffer_kb": bufKB,
						"workers": workers, "batch": batch, "bound": "asp",
						"cache_entries": cacheEntries, "zipf": 0.99,
						"remote": tier == "remote", "ops": lat.Count,
					},
				}
				r.SetLatency(lat)
				e.Record(r)
			}
		}
		return nil
	}

	// Local tier: the core table, cache off then on.
	for _, cacheEntries := range []int{0, entries} {
		tbl, err := core.OpenTable(core.Options{
			Dir: e.dir("latency"), Dim: dim, StalenessBound: core.BoundASP,
			MemoryBytes: int64(bufKB) << 10, RecordsPerPage: 256,
			ExpectedKeys: records, CacheEntries: cacheEntries,
		})
		if err != nil {
			return err
		}
		tableSess := func() (sweepSession, error) { return tbl.NewSession() }
		if err := loadKeys(tableSess, records, dim); err != nil {
			tbl.Close()
			return err
		}
		err = measure("local", cacheEntries, tableSess, 401)
		tbl.Close()
		if err != nil {
			return err
		}
	}

	// Remote tier: loopback mlkv-server, client-side tier off then on.
	// batch=1 here pays one framed round trip per key — the wire's tail
	// floor — which is exactly what the cache-on rows then erase.
	reg := server.NewRegistry(server.RegistryConfig{
		DefaultBound: faster.BoundAsync,
		Opener: func(id string, d, shards int, bound int64, engine string) (kv.Store, error) {
			return kv.OpenFasterShards(kv.ShardedConfig{
				Dir: e.dir("latency-remote"), Shards: shards, ValueSize: d * 4,
				MemoryBytes: int64(bufKB) << 10, RecordsPerPage: 256,
				ExpectedKeys: records, StalenessBound: bound,
			}, "mlkv")
		},
	})
	defer reg.Close()
	srv := server.New(server.Config{Registry: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveErr
	}()
	maxWorkers := workerPoints[len(workerPoints)-1]
	db, err := mlkv.Connect(mlkv.Scheme+ln.Addr().String(), mlkv.WithConns(maxWorkers))
	if err != nil {
		return err
	}
	defer db.Close()
	for _, cacheEntries := range []int{0, entries} {
		opts := []mlkv.Option{mlkv.WithStalenessBound(mlkv.ASP)}
		if cacheEntries > 0 {
			opts = append(opts, mlkv.WithCache(cacheEntries))
		}
		m, err := db.Open(fmt.Sprintf("latency-c%d", cacheEntries), dim, opts...)
		if err != nil {
			return err
		}
		modelSess := func() (sweepSession, error) { return m.NewSession() }
		if err := loadKeys(modelSess, records, dim); err != nil {
			m.Close()
			return err
		}
		err = measure("remote", cacheEntries, modelSess, 701)
		m.Close()
		if err != nil {
			return err
		}
	}
	return nil
}
