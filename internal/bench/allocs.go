package bench

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	mlkv "github.com/llm-db/mlkv-go"
	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/latency"
	"github.com/llm-db/mlkv-go/internal/server"
	"github.com/llm-db/mlkv-go/internal/util"
)

// AllocSweep is the allocation trajectory of the remote hot path: a
// loopback mlkv-server and a public-API session issuing 256-key Zipf
// GetBatch calls, measured with testing.Benchmark so allocs/op and
// bytes/op land in BENCH_allocs.json. Both processes share this address
// space, so the numbers cover the whole path — client encode, both frame
// loops, the server's batch staging — which is what the CI allocation
// gate budgets. Run once per change that touches the serving stack; the
// committed baseline is what "zero-allocation hot path" means here.
func (e *Env) AllocSweep() error {
	const (
		records = 1 << 16
		dim     = 16
		batch   = 256
	)
	e.printf("== Allocs: remote %d-key GetBatch hot path (loopback, ASP) ==\n", batch)
	e.printf("%-28s %12s %12s %10s %14s\n", "config", "ns/op", "allocs/op", "B/op", "keys/s")

	for _, entries := range []int{0, records} {
		reg := server.NewRegistry(server.RegistryConfig{
			DefaultBound: faster.BoundAsync,
			Opener: func(id string, d, shards int, bound int64, engine string) (kv.Store, error) {
				return kv.OpenFasterShards(kv.ShardedConfig{
					Dir: e.dir("allocs"), Shards: shards, ValueSize: d * 4,
					MemoryBytes: 32 << 20, ExpectedKeys: records,
					StalenessBound: bound,
				}, "mlkv")
			},
		})
		srv := server.New(server.Config{Registry: reg})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			reg.Close()
			return err
		}
		serveErr := make(chan error, 1)
		go func() { serveErr <- srv.Serve(ln) }()

		res, rate, lat, err := measureRemoteAllocs(ln.Addr().String(), records, dim, batch, entries)

		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		srv.Shutdown(ctx)
		cancel()
		<-serveErr
		reg.Close()
		if err != nil {
			return err
		}

		name := fmt.Sprintf("remote-getbatch%d/cache=%d", batch, entries)
		e.printf("%-28s %12d %12d %10d %14.0f\n",
			name, res.NsPerOp(), res.AllocsPerOp(), res.AllocedBytesPerOp(), rate)
		r := Result{
			Name:        name,
			OpsPerSec:   rate,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Config: map[string]any{
				"records": records, "dim": dim, "batch": batch,
				"bound": "asp", "cache_entries": entries, "zipf": 0.99,
			},
		}
		r.SetLatency(lat)
		e.Record(r)
	}
	return nil
}

// measureRemoteAllocs opens the model over loopback, first-touches the
// whole key space (so the measured loop is pure steady-state reads), and
// benchmarks the Zipf GetBatch loop, recording per-call latency as it
// goes (Record is allocation-free, so the allocs/op number is unchanged
// by the measurement).
func measureRemoteAllocs(addr string, records uint64, dim, batch, cacheEntries int) (testing.BenchmarkResult, float64, latency.Snapshot, error) {
	db, err := mlkv.Connect(mlkv.Scheme + addr)
	if err != nil {
		return testing.BenchmarkResult{}, 0, latency.Snapshot{}, err
	}
	defer db.Close()
	opts := []mlkv.Option{mlkv.WithStalenessBound(mlkv.ASP)}
	if cacheEntries > 0 {
		opts = append(opts, mlkv.WithCache(cacheEntries))
	}
	m, err := db.Open("allocs", dim, opts...)
	if err != nil {
		return testing.BenchmarkResult{}, 0, latency.Snapshot{}, err
	}
	defer m.Close()
	sess, err := m.NewSession()
	if err != nil {
		return testing.BenchmarkResult{}, 0, latency.Snapshot{}, err
	}
	defer sess.Close()

	keys := make([]uint64, batch)
	dst := make([]float32, batch*dim)
	for base := uint64(0); base < records; base += uint64(batch) {
		for i := range keys {
			keys[i] = base + uint64(i)
		}
		if err := sess.GetBatch(keys, dst); err != nil {
			return testing.BenchmarkResult{}, 0, latency.Snapshot{}, err
		}
	}

	var lat latency.Histogram
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		lat.Reset() // keep only the final (longest) benchmark round
		zipf := util.NewScrambledZipf(util.NewRNG(7), records, 0.99)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range keys {
				keys[j] = zipf.Next()
			}
			opStart := time.Now()
			if err := sess.GetBatch(keys, dst); err != nil {
				benchErr = err
				b.FailNow()
			}
			lat.Since(opStart)
		}
	})
	if benchErr != nil {
		return res, 0, latency.Snapshot{}, benchErr
	}
	rate := float64(batch) * float64(res.N) / res.T.Seconds()
	return res, rate, lat.Snapshot(), nil
}
