package bench

import (
	"fmt"
	"time"

	"github.com/llm-db/mlkv-go/internal/core"
	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/train"
	"github.com/llm-db/mlkv-go/internal/ycsb"
)

// Fig2 reproduces Figure 2: the scalability problem statement. DLRM trains
// on a plain FASTER backend synchronously (data stalls) and fully
// asynchronously (staleness), reporting the latency breakdown, throughput,
// and final AUC of each.
func (e *Env) Fig2() error {
	e.printf("== Figure 2: scalability issues (sync vs fully async, FASTER backend) ==\n")
	e.printf("%-12s %10s %10s %10s %12s %8s\n", "mode", "emb%", "fwd%", "bwd%", "samples/s", "AUC")
	bufKB := e.Scale.BufferKBs[0]
	for _, mode := range []struct {
		name  string
		mode  train.Mode
		bound int64
	}{
		{"sync", train.ModeSync, core.BoundBSP},
		{"fully-async", train.ModeAsync, core.BoundASP},
	} {
		tbl, err := e.mlkvTable("fig2", e.Scale.Dim, mode.bound, bufKB, e.Scale.CTRCard*uint64(e.Scale.CTRFields), e.ctrInit())
		if err != nil {
			return err
		}
		res, err := train.TrainCTR(e.ctrOpts(train.NewTableBackend(tbl, false), mode.mode, 0))
		tbl.Close()
		if err != nil {
			return err
		}
		tot := res.Stage.Total().Seconds()
		if tot == 0 {
			tot = 1
		}
		e.printf("%-12s %9.1f%% %9.1f%% %9.1f%% %12.0f %8.4f\n",
			mode.name,
			res.Stage.Emb.Seconds()/tot*100,
			res.Stage.Forward.Seconds()/tot*100,
			res.Stage.Backward.Seconds()/tot*100,
			res.Throughput, res.FinalMetric)
	}
	return nil
}

// Fig6 reproduces Figure 6: end-to-end convergence with in-memory-scale
// data. Specialized frameworks' proprietary in-memory storage (MemBackend)
// versus the same pipeline over MLKV; MLKV should converge to the same
// quality at comparable speed (paper: within ~2.5–22%).
func (e *Env) Fig6() error {
	e.printf("== Figure 6: end-to-end convergence, native in-memory vs MLKV ==\n")
	bigBuf := e.Scale.BufferKBs[len(e.Scale.BufferKBs)-1] * 4 // in-memory regime
	evalEvery := e.Scale.Duration / 5
	if evalEvery <= 0 {
		evalEvery = 100 * time.Millisecond
	}

	runCTR := func(name string, b train.Backend) error {
		o := e.ctrOpts(b, train.ModeAsync, 0)
		o.EvalEvery = evalEvery
		res, err := train.TrainCTR(o)
		if err != nil {
			return err
		}
		printCurve(e, "DLRM/"+name, "AUC", res)
		return nil
	}
	if err := runCTR("native", train.NewMemBackend("native", e.Scale.Dim, e.ctrInit())); err != nil {
		return err
	}
	tbl, err := e.mlkvTable("fig6ctr", e.Scale.Dim, 8, bigBuf, e.Scale.CTRCard*uint64(e.Scale.CTRFields), e.ctrInit())
	if err != nil {
		return err
	}
	if err := runCTR("mlkv", train.NewTableBackend(tbl, true)); err != nil {
		tbl.Close()
		return err
	}
	tbl.Close()

	runKGE := func(name string, b train.Backend) error {
		o := e.kgeOpts(b, 0, false)
		o.EvalEvery = evalEvery
		res, err := train.TrainKGE(o)
		if err != nil {
			return err
		}
		printCurve(e, "KGE/"+name, "Hits@10", res)
		return nil
	}
	if err := runKGE("native", train.NewMemBackend("native", e.Scale.Dim, e.kgeInit())); err != nil {
		return err
	}
	ktbl, err := e.mlkvTable("fig6kge", e.Scale.Dim, 8, bigBuf, e.Scale.KGEntities, e.kgeInit())
	if err != nil {
		return err
	}
	if err := runKGE("mlkv", train.NewTableBackend(ktbl, true)); err != nil {
		ktbl.Close()
		return err
	}
	ktbl.Close()

	runGNN := func(name string, b train.Backend) error {
		o := e.gnnOpts(b, 0)
		o.EvalEvery = evalEvery
		res, err := train.TrainGNN(o)
		if err != nil {
			return err
		}
		printCurve(e, "GNN/"+name, "Acc%", res)
		return nil
	}
	if err := runGNN("native", train.NewMemBackend("native", e.Scale.Dim, e.ctrInit())); err != nil {
		return err
	}
	gtbl, err := e.mlkvTable("fig6gnn", e.Scale.Dim, 8, bigBuf, e.Scale.GraphNodes, e.ctrInit())
	if err != nil {
		return err
	}
	if err := runGNN("mlkv", train.NewTableBackend(gtbl, true)); err != nil {
		gtbl.Close()
		return err
	}
	gtbl.Close()
	return nil
}

func printCurve(e *Env, name, metric string, res *train.Result) {
	e.printf("%-14s thru=%8.0f/s final %s=%.3f curve:", name, res.Throughput, metric, res.FinalMetric)
	for _, p := range res.Curve {
		e.printf(" (%.1fs,%.3f)", p.Seconds, p.Metric)
	}
	e.printf("\n")
}

// Fig7 reproduces Figure 7: larger-than-memory training throughput (top)
// and energy (bottom) across backends and buffer sizes, for all three
// tasks. Expected shape: mlkv > faster > {lsm, bptree}, gaps narrowing as
// buffers grow.
func (e *Env) Fig7() error {
	e.printf("== Figure 7: larger-than-memory throughput and energy vs buffer size ==\n")
	tasks := []string{"dlrm", "kge", "gnn"}
	for _, task := range tasks {
		e.printf("-- %s --\n", task)
		e.printf("%-8s", "backend")
		for _, kb := range e.Scale.BufferKBs {
			e.printf(" %9dKB %10s", kb, "J/batch")
		}
		e.printf("\n")
		rows := map[string][]string{}
		order := []string{"mlkv", "faster", "lsm", "bptree"}
		for _, kb := range e.Scale.BufferKBs {
			init := e.ctrInit()
			keys := e.Scale.CTRCard * uint64(e.Scale.CTRFields)
			bound := int64(8)
			if task == "kge" {
				init = e.kgeInit()
				keys = e.Scale.KGEntities
			}
			if task == "gnn" {
				keys = e.Scale.GraphNodes
			}
			set, closeAll, err := e.backendSet(e.Scale.Dim, bound, kb, keys, init)
			if err != nil {
				return err
			}
			for _, name := range order {
				b := set[name]
				var res *train.Result
				la := 0
				if name == "mlkv" {
					la = 16
				}
				switch task {
				case "dlrm":
					res, err = train.TrainCTR(e.ctrOpts(b, train.ModeAsync, la))
				case "kge":
					res, err = train.TrainKGE(e.kgeOpts(b, la, false))
				case "gnn":
					res, err = train.TrainGNN(e.gnnOpts(b, la))
				}
				if err != nil {
					closeAll()
					return err
				}
				rows[name] = append(rows[name],
					fmt.Sprintf(" %11.0f %10.2f", res.Throughput, JoulesPerBatch(res, 32)))
			}
			closeAll()
		}
		for _, name := range order {
			e.printf("%-8s", name)
			for _, cell := range rows[name] {
				e.printf("%s", cell)
			}
			e.printf("\n")
		}
	}
	return nil
}

// Fig8 reproduces Figure 8: throughput vs model quality across staleness
// bounds at a fixed buffer. Expected shape: throughput rises steeply with
// the bound (up to ~6.6× in the paper) while the metric degrades <0.1%.
func (e *Env) Fig8() error {
	e.printf("== Figure 8: effect of bounded staleness consistency ==\n")
	bounds := []int64{0, 4, 10, 20, 40, 80}
	bufKB := e.Scale.BufferKBs[0]
	e.printf("%-6s %14s %10s %14s %10s\n", "bound", "dlrm-samp/s", "AUC", "kge-samp/s", "Hits@10")
	for _, bound := range bounds {
		tbl, err := e.mlkvTable("fig8c", e.Scale.Dim, bound, bufKB, e.Scale.CTRCard*uint64(e.Scale.CTRFields), e.ctrInit())
		if err != nil {
			return err
		}
		mode := train.ModeAsync
		if bound == 0 {
			mode = train.ModeSync
		}
		resC, err := train.TrainCTR(e.ctrOpts(train.NewTableBackend(tbl, true), mode, 16))
		tbl.Close()
		if err != nil {
			return err
		}
		ktbl, err := e.mlkvTable("fig8k", e.Scale.Dim, bound, bufKB, e.Scale.KGEntities, e.kgeInit())
		if err != nil {
			return err
		}
		resK, err := train.TrainKGE(e.kgeOpts(train.NewTableBackend(ktbl, true), 16, false))
		ktbl.Close()
		if err != nil {
			return err
		}
		e.printf("%-6d %14.0f %10.4f %14.0f %10.2f\n",
			bound, resC.Throughput, resC.FinalMetric, resK.Throughput, resK.FinalMetric)
	}
	return nil
}

// Fig9 reproduces Figure 9: look-ahead prefetching. (a) DLRM relative
// speedup over the lookahead-off baseline across staleness bounds — large
// at small bounds, fading as bounds grow; (b) KGE throughput vs buffer size
// for MLKV/FASTER × standard/BETA orderings.
func (e *Env) Fig9() error {
	e.printf("== Figure 9a: DLRM relative speedup from look-ahead prefetching ==\n")
	bufKB := e.Scale.BufferKBs[0]
	e.printf("%-6s %12s %12s %10s\n", "bound", "off-samp/s", "on-samp/s", "speedup")
	for _, bound := range []int64{0, 4, 10, 20, 40, 80} {
		mode := train.ModeAsync
		if bound == 0 {
			mode = train.ModeSync
		}
		var thr [2]float64
		for i, la := range []int{0, 32} {
			tbl, err := e.mlkvTable("fig9a", e.Scale.Dim, bound, bufKB, e.Scale.CTRCard*uint64(e.Scale.CTRFields), e.ctrInit())
			if err != nil {
				return err
			}
			res, err := train.TrainCTR(e.ctrOpts(train.NewTableBackend(tbl, la > 0), mode, la))
			tbl.Close()
			if err != nil {
				return err
			}
			thr[i] = res.Throughput
		}
		e.printf("%-6d %12.0f %12.0f %9.2fx\n", bound, thr[0], thr[1], thr[1]/thr[0])
	}

	e.printf("== Figure 9b: KGE throughput vs buffer (MLKV/FASTER x standard/BETA) ==\n")
	e.printf("%-16s", "variant")
	for _, kb := range e.Scale.BufferKBs {
		e.printf(" %9dKB", kb)
	}
	e.printf("\n")
	variants := []struct {
		name  string
		bound int64
		la    int
		beta  bool
	}{
		{"mlkv", 8, 16, false},
		{"faster", core.BoundDisabled, 0, false},
		{"mlkv-beta", 8, 16, true},
		{"faster-beta", core.BoundDisabled, 0, true},
	}
	for _, v := range variants {
		e.printf("%-16s", v.name)
		for _, kb := range e.Scale.BufferKBs {
			tbl, err := e.mlkvTable("fig9b", e.Scale.Dim, v.bound, kb, e.Scale.KGEntities, e.kgeInit())
			if err != nil {
				return err
			}
			res, err := train.TrainKGE(e.kgeOpts(train.NewTableBackend(tbl, v.la > 0), v.la, v.beta))
			tbl.Close()
			if err != nil {
				return err
			}
			e.printf(" %11.0f", res.Throughput)
		}
		e.printf("\n")
	}
	return nil
}

// Fig10 reproduces Figure 10: YCSB (50/50 read-write) throughput, MLKV vs
// FASTER, across buffer sizes, thread counts, and value sizes, under
// uniform and zipfian access. Expected: MLKV within 10% (uniform) / 20%
// (zipfian) of FASTER.
func (e *Env) Fig10() error {
	e.printf("== Figure 10: YCSB throughput, MLKV vs FASTER ==\n")
	run := func(name string, bound int64, bufKB, threads, vs int, dist ycsb.Distribution) (float64, error) {
		recBytes := int64(vs + 24)
		rpp := 256
		memPages := int(int64(bufKB) << 10 / (recBytes * int64(rpp)))
		if memPages < 4 {
			memPages = 4
		}
		st, err := faster.Open(faster.Config{
			Dir: e.dir("fig10"), ValueSize: vs, RecordsPerPage: rpp,
			MemPages: memPages, MutablePages: memPages / 2,
			StalenessBound: bound, ExpectedKeys: e.Scale.YCSBRecords,
		})
		if err != nil {
			return 0, err
		}
		store := kv.WrapFaster(st, name)
		defer store.Close()
		res, err := ycsb.Run(ycsb.Options{
			Store: store, Records: e.Scale.YCSBRecords, Threads: threads,
			ReadFraction: 0.5, Dist: dist, MaxOps: e.Scale.YCSBOps, Seed: 42,
		})
		if err != nil {
			return 0, err
		}
		return res.Throughput, nil
	}
	vsDefault := e.Scale.ValueSizes[0]
	thDefault := e.Scale.Threads[len(e.Scale.Threads)-1]
	for _, dist := range []ycsb.Distribution{ycsb.Uniform, ycsb.Zipfian} {
		e.printf("-- %s --\n", dist)
		e.printf("%-10s %-10s %12s %12s %8s\n", "sweep", "point", "mlkv-ops/s", "faster-ops/s", "ratio")
		for _, kb := range e.Scale.BufferKBs {
			m, err := run("mlkv", faster.BoundAsync, kb, thDefault, vsDefault, dist)
			if err != nil {
				return err
			}
			f, err := run("faster", core.BoundDisabled, kb, thDefault, vsDefault, dist)
			if err != nil {
				return err
			}
			e.printf("%-10s %-10s %12.0f %12.0f %8.3f\n", "buffer", fmt.Sprintf("%dKB", kb), m, f, m/f)
		}
		for _, th := range e.Scale.Threads {
			m, err := run("mlkv", faster.BoundAsync, e.Scale.BufferKBs[0], th, vsDefault, dist)
			if err != nil {
				return err
			}
			f, err := run("faster", core.BoundDisabled, e.Scale.BufferKBs[0], th, vsDefault, dist)
			if err != nil {
				return err
			}
			e.printf("%-10s %-10d %12.0f %12.0f %8.3f\n", "threads", th, m, f, m/f)
		}
		for _, vs := range e.Scale.ValueSizes {
			m, err := run("mlkv", faster.BoundAsync, e.Scale.BufferKBs[0], thDefault, vs, dist)
			if err != nil {
				return err
			}
			f, err := run("faster", core.BoundDisabled, e.Scale.BufferKBs[0], thDefault, vs, dist)
			if err != nil {
				return err
			}
			e.printf("%-10s %-10d %12.0f %12.0f %8.3f\n", "valsize", vs, m, f, m/f)
		}
	}
	return nil
}

// Fig11 reproduces the eBay case studies with synthetic risk graphs:
// (a) Trisk-like — GNN throughput vs buffer for 2-instance DDP (in-memory,
// per-batch gradient exchange) vs single-instance MLKV vs FASTER;
// (b) Payout-like — AUC/accuracy over time for MLKV/FASTER at small and
// large buffers. Expected: MLKV reaches ~70% of DDP's throughput on one
// instance, and larger buffers + lookahead converge faster.
func (e *Env) Fig11() error {
	e.printf("== Figure 11a: Trisk-like GNN throughput vs buffer ==\n")
	e.printf("%-8s", "backend")
	for _, kb := range e.Scale.BufferKBs {
		e.printf(" %9dKB", kb)
	}
	e.printf(" %11s\n", "DDP(2-inst)")
	// DDP: everything in memory across 2 instances, paying a per-batch
	// gradient-exchange delay.
	ddpOpts := e.gnnOpts(train.NewMemBackend("ddp", e.Scale.Dim, e.ctrInit()), 0)
	ddpOpts.BatchSyncDelay = 2 * time.Millisecond
	ddpRes, err := train.TrainGNN(ddpOpts)
	if err != nil {
		return err
	}
	for _, name := range []string{"mlkv", "faster"} {
		e.printf("%-8s", name)
		for _, kb := range e.Scale.BufferKBs {
			bound := int64(8)
			la := 16
			if name == "faster" {
				bound = core.BoundDisabled
				la = 0
			}
			tbl, err := e.mlkvTable("fig11a", e.Scale.Dim, bound, kb, e.Scale.GraphNodes, e.ctrInit())
			if err != nil {
				return err
			}
			res, err := train.TrainGNN(e.gnnOpts(train.NewTableBackend(tbl, la > 0), la))
			tbl.Close()
			if err != nil {
				return err
			}
			e.printf(" %11.0f", res.Throughput)
		}
		if name == "mlkv" {
			e.printf(" %11.0f\n", ddpRes.Throughput)
		} else {
			e.printf("\n")
		}
	}

	e.printf("== Figure 11b: Payout-like convergence, buffer small vs large ==\n")
	evalEvery := e.Scale.Duration / 5
	if evalEvery <= 0 {
		evalEvery = 100 * time.Millisecond
	}
	small, large := e.Scale.BufferKBs[0], e.Scale.BufferKBs[len(e.Scale.BufferKBs)-1]
	for _, v := range []struct {
		name  string
		bound int64
		la    int
		kb    int
	}{
		{"mlkv-small", 8, 16, small},
		{"mlkv-large", 8, 16, large},
		{"faster-small", core.BoundDisabled, 0, small},
		{"faster-large", core.BoundDisabled, 0, large},
	} {
		tbl, err := e.mlkvTable("fig11b", e.Scale.Dim, v.bound, v.kb, e.Scale.GraphNodes, e.ctrInit())
		if err != nil {
			return err
		}
		o := e.gnnOpts(train.NewTableBackend(tbl, v.la > 0), v.la)
		o.EvalEvery = evalEvery
		res, err := train.TrainGNN(o)
		tbl.Close()
		if err != nil {
			return err
		}
		printCurve(e, v.name, "Acc%", res)
	}
	return nil
}

// ShardSweep goes beyond the paper: it measures how hash-partitioning the
// store across independent instances (each with its own hybrid log, index,
// and epoch domain) scales a Zipf read-heavy YCSB workload, holding the
// total memory budget, index budget, and thread count fixed. The speedup
// column is throughput relative to the unsharded store.
func (e *Env) ShardSweep() error {
	e.printf("== Sharding: YCSB zipfian read-heavy throughput vs shard count ==\n")
	threads := e.Scale.Threads[len(e.Scale.Threads)-1]
	if threads < 4 {
		threads = 4
	}
	vs := e.Scale.ValueSizes[0]
	bufKB := e.Scale.BufferKBs[0]
	e.printf("records=%d ops=%d threads=%d valuesize=%d buffer=%dKB read-fraction=0.9 sync-writes\n",
		e.Scale.YCSBRecords, e.Scale.YCSBOps, threads, vs, bufKB)
	e.printf("%-8s %12s %9s\n", "shards", "ops/s", "speedup")
	var base float64
	for _, shards := range []int{1, 2, 4, 8} {
		thr, err := e.runShardedYCSB(shards, threads, vs, bufKB)
		if err != nil {
			return err
		}
		if shards == 1 {
			base = thr
		}
		e.printf("%-8d %12.0f %8.2fx\n", shards, thr, thr/base)
	}
	return nil
}

// runShardedYCSB runs one Zipf read-heavy YCSB configuration over a store
// hash-partitioned across the given shard count, splitting the bufKB
// memory budget evenly. Durable (fsync-per-page) writes: that is where a
// single store's lone flusher serializes every log append behind one fsync
// stream, and where independent per-shard logs overlap their flushes.
func (e *Env) runShardedYCSB(shards, threads, vs, bufKB int) (float64, error) {
	store, err := kv.OpenFasterShards(kv.ShardedConfig{
		Dir: e.dir("shardsweep"), Shards: shards, ValueSize: vs,
		MemoryBytes: int64(bufKB) << 10, ExpectedKeys: e.Scale.YCSBRecords,
		StalenessBound: faster.BoundAsync, SyncWrites: true,
	}, fmt.Sprintf("mlkv-%dshard", shards))
	if err != nil {
		return 0, err
	}
	defer store.Close()
	res, err := ycsb.Run(ycsb.Options{
		Store: store, Records: e.Scale.YCSBRecords, Threads: threads,
		ReadFraction: 0.9, Dist: ycsb.Zipfian, MaxOps: e.Scale.YCSBOps, Seed: 42,
	})
	if err != nil {
		return 0, err
	}
	return res.Throughput, nil
}

// Run dispatches one experiment by name. With Env.JSONDir set, the
// measurements the experiment records land in BENCH_<name>.json.
func (e *Env) Run(name string) error {
	if name == "all" {
		for _, n := range []string{"fig2", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "shards", "network", "trainbatch", "cache", "allocs", "engines", "latency", "cluster", "failover"} {
			if err := e.Run(n); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
		}
		return nil
	}
	e.results = e.results[:0]
	var err error
	switch name {
	case "fig2":
		err = e.Fig2()
	case "fig6":
		err = e.Fig6()
	case "fig7":
		err = e.Fig7()
	case "fig8":
		err = e.Fig8()
	case "fig9":
		err = e.Fig9()
	case "fig10":
		err = e.Fig10()
	case "fig11":
		err = e.Fig11()
	case "shards":
		err = e.ShardSweep()
	case "network":
		err = e.NetworkSweep()
	case "trainbatch":
		err = e.TrainBatchSweep()
	case "cache":
		err = e.CacheSweep()
	case "allocs":
		err = e.AllocSweep()
	case "engines":
		err = e.EngineSweep()
	case "latency":
		err = e.LatencySweep()
	case "cluster":
		err = e.ClusterSweep()
	case "failover":
		err = e.FailoverSweep()
	default:
		return fmt.Errorf("bench: unknown experiment %q (fig2|fig6|fig7|fig8|fig9|fig10|fig11|shards|network|trainbatch|cache|allocs|engines|latency|cluster|failover|all)", name)
	}
	if err != nil {
		return err
	}
	return e.writeJSON(name)
}
