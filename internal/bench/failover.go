package bench

import (
	"context"
	"fmt"
	"net"
	"strings"
	"time"

	mlkv "github.com/llm-db/mlkv-go"
	"github.com/llm-db/mlkv-go/internal/cluster"
	"github.com/llm-db/mlkv-go/internal/faultnet"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/latency"
	"github.com/llm-db/mlkv-go/internal/server"
)

// Failover experiment: how long does losing a primary actually cost a
// writer? Each trial stands up a fresh three-node cluster (two primaries
// plus a replica of the first, the first fronted by a faultnet proxy),
// severs the primary mid-workload, and measures kill-to-first-acked-write
// — the end-to-end outage a client experiences: suspicion timeout, quorum
// confirmation, replica promotion, map gossip, and the client's own
// retry/refetch loop, all in one number.

// failoverHealth is the detector tuning the experiment runs with.
var failoverBenchHealth = cluster.HealthConfig{
	Interval:     25 * time.Millisecond,
	SuspectAfter: 250 * time.Millisecond,
}

// FailoverSweep runs the kill-the-primary trials and records the
// detection-to-recovery latency distribution.
func (e *Env) FailoverSweep() error {
	const trials = 5
	hc := failoverBenchHealth

	e.printf("== Failover: kill-to-first-acked-write ==\n")
	e.printf("heartbeat=%s suspect-after=%s trials=%d\n", hc.Interval, hc.SuspectAfter, trials)
	e.printf("%-7s %14s\n", "trial", "recovery-ms")

	var lat latency.Histogram
	for trial := 0; trial < trials; trial++ {
		d, err := e.failoverTrial(trial, hc)
		if err != nil {
			return fmt.Errorf("bench: failover trial %d: %w", trial, err)
		}
		lat.Record(d)
		e.printf("%-7d %14.1f\n", trial, float64(d)/1e6)
	}
	s := lat.Snapshot()
	e.printf("recovery p50=%.1fms max=%.1fms\n", latency.Us(s.P50)/1e3, latency.Us(s.Max)/1e3)
	r := Result{
		Name: "failover/kill-primary",
		Config: map[string]any{
			"trials":       trials,
			"heartbeat_ms": hc.Interval.Milliseconds(),
			"suspect_ms":   hc.SuspectAfter.Milliseconds(),
			"nodes":        3,
			"unit":         "kill-to-first-acked-write",
			"max_ms":       latency.Us(s.Max) / 1e3,
			"mean_ms":      latency.Us(s.Mean()) / 1e3,
		},
	}
	r.SetLatency(s)
	e.Record(r)
	return nil
}

// failoverTrial runs one kill cycle and returns the kill-to-recovery time.
func (e *Env) failoverTrial(trial int, hc cluster.HealthConfig) (time.Duration, error) {
	const (
		dim  = 8
		keys = 64
	)
	var teardowns []func()
	defer func() {
		for i := len(teardowns) - 1; i >= 0; i-- {
			teardowns[i]()
		}
	}()

	lns := make([]net.Listener, 3)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		lns[i] = ln
		teardowns = append(teardowns, func() { _ = ln.Close() })
	}
	proxy, err := faultnet.New(lns[0].Addr().String())
	if err != nil {
		return 0, err
	}
	teardowns = append(teardowns, func() { _ = proxy.Close() })

	m, err := cluster.BuildMap([]cluster.Node{
		{ID: "n0", Addr: proxy.Addr(), Role: cluster.RolePrimary},
		{ID: "n1", Addr: lns[1].Addr().String(), Role: cluster.RolePrimary},
		{ID: "n2", Addr: lns[2].Addr().String(), Role: cluster.RoleReplica, PrimaryID: "n0"},
	})
	if err != nil {
		return 0, err
	}
	var (
		regs   [3]*server.Registry
		states [3]*cluster.State
	)
	for i, id := range []string{"n0", "n1", "n2"} {
		dir := e.dir(fmt.Sprintf("failover-%d-%s", trial, id))
		reg := server.NewRegistry(server.RegistryConfig{
			DefaultShards: 1,
			Name:          id,
			Opener: func(model string, d, shards int, bound int64, engine string) (kv.Store, error) {
				return kv.OpenFasterShards(kv.ShardedConfig{
					Dir: dir + "/" + model, Shards: shards, ValueSize: d * 4,
					MemoryBytes: 1 << 20, RecordsPerPage: 256,
					ExpectedKeys: keys * 4, StalenessBound: bound,
				}, "mlkv")
			},
		})
		st, err := cluster.NewState(id, m)
		if err != nil {
			reg.Close()
			return 0, err
		}
		st.EnableReplication()
		cfg := hc
		cfg.Watermark = reg.ReplWatermark
		st.StartHealth(cfg)
		srv := server.New(server.Config{Registry: reg, Cluster: st})
		serveErr := make(chan error, 1)
		go func(ln net.Listener) { serveErr <- srv.Serve(ln) }(lns[i])
		regs[i], states[i] = reg, st
		teardowns = append(teardowns, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
			<-serveErr
			st.Close()
			reg.Close()
		})
	}

	target := mlkv.Scheme + strings.Join([]string{proxy.Addr(), lns[1].Addr().String(), lns[2].Addr().String()}, ",")
	db, err := mlkv.Connect(target, mlkv.WithConns(2))
	if err != nil {
		return 0, err
	}
	teardowns = append(teardowns, func() { _ = db.Close() })
	mdl, err := db.Open("failover", dim, mlkv.WithStalenessBound(mlkv.ASP))
	if err != nil {
		return 0, err
	}
	ses, err := mdl.NewSession()
	if err != nil {
		return 0, err
	}
	teardowns = append(teardowns, func() { ses.Close(); _ = mdl.Close() })

	val := make([]float32, dim)
	for i := range val {
		val[i] = float32(trial + 1)
	}
	var probe uint64
	var n0Writes uint64
	found := false
	for k := uint64(0); k < keys; k++ {
		if err := ses.Put(k, val); err != nil {
			return 0, err
		}
		if m.Owner(k).ID == "n0" {
			n0Writes++
			if !found {
				probe, found = k, true
			}
		}
	}
	if !found {
		return 0, fmt.Errorf("no keys landed on n0")
	}
	// The kill is only meaningful once the replica has applied what the
	// primary acked; otherwise recovery time includes replay the workload
	// never waited for.
	deadline := time.Now().Add(10 * time.Second)
	for regs[2].ReplWatermark() < n0Writes {
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("replica never caught up (watermark %d < %d)", regs[2].ReplWatermark(), n0Writes)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Kill the primary: network first (peers see silence), then process.
	proxy.Partition()
	states[0].Close()
	t0 := time.Now()
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		err := ses.PutCtx(ctx, probe, val)
		cancel()
		if err == nil {
			return time.Since(t0), nil
		}
		if time.Since(t0) > 30*time.Second {
			return 0, fmt.Errorf("no acked write within 30s of the kill: %w", err)
		}
	}
}
