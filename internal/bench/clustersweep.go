package bench

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	mlkv "github.com/llm-db/mlkv-go"
	"github.com/llm-db/mlkv-go/internal/cluster"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/latency"
	"github.com/llm-db/mlkv-go/internal/server"
)

// clusterNodes stands up n loopback mlkv-servers as one logical store: a
// plain single server for n=1 (the pre-cluster baseline) or, for n=3, two
// primaries plus a read replica of the first. It returns the mlkv://
// seed-list target and a teardown function.
func (e *Env) clusterNodes(n int, records uint64, bufKB int) (string, func(), error) {
	var (
		addrs     []string
		teardowns []func()
	)
	teardown := func() {
		for i := len(teardowns) - 1; i >= 0; i-- {
			teardowns[i]()
		}
	}
	lns := make([]net.Listener, n)
	specs := make([]cluster.Node, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			teardown()
			return "", nil, err
		}
		lns[i] = ln
		addrs = append(addrs, ln.Addr().String())
		specs[i] = cluster.Node{ID: fmt.Sprintf("n%d", i), Addr: addrs[i], Role: cluster.RolePrimary}
	}
	var mp *cluster.Map
	if n > 1 {
		specs[n-1].Role = cluster.RoleReplica
		specs[n-1].PrimaryID = specs[0].ID
		var err error
		if mp, err = cluster.BuildMap(specs); err != nil {
			teardown()
			return "", nil, err
		}
	}
	for i := range lns {
		dir := e.dir(fmt.Sprintf("cluster-%dn", n))
		reg := server.NewRegistry(server.RegistryConfig{
			DefaultShards: 1,
			Name:          specs[i].ID,
			Opener: func(id string, d, shards int, bound int64, engine string) (kv.Store, error) {
				return kv.OpenFasterShards(kv.ShardedConfig{
					Dir: dir + "/" + id, Shards: shards, ValueSize: d * 4,
					MemoryBytes: int64(bufKB) << 10, RecordsPerPage: 256,
					ExpectedKeys: records, StalenessBound: bound,
				}, "mlkv")
			},
		})
		cfg := server.Config{Registry: reg}
		var st *cluster.State
		if mp != nil {
			var err error
			if st, err = cluster.NewState(specs[i].ID, mp); err != nil {
				reg.Close()
				teardown()
				return "", nil, err
			}
			st.EnableReplication()
			cfg.Cluster = st
		}
		srv := server.New(cfg)
		serveErr := make(chan error, 1)
		go func(ln net.Listener) { serveErr <- srv.Serve(ln) }(lns[i])
		teardowns = append(teardowns, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			<-serveErr
			if st != nil {
				st.Close()
			}
			reg.Close()
		})
	}
	return mlkv.Scheme + strings.Join(addrs, ","), teardown, nil
}

// measureClusterMix is the clocked-read workload: each worker cycles
// GetBatch→PutBatch over a strided sequential cursor, so every staleness
// token a read acquires is released by the write that follows and a
// finite bound makes steady progress. The keys must be distinct within a
// batch — a Zipf stream would read its hot key dozens of times before the
// balancing puts land, push the key's clock past any reasonable bound,
// and deadlock every worker on writes none of them can reach. keys/s
// counts reads; the latency distribution is the read op's (the leg where
// the blocking-bound serial gate shows up).
func measureClusterMix(newSess func() (sweepSession, error), records uint64, dim, batch, workers int, dur time.Duration, seed0 uint64) (float64, latency.Snapshot, error) {
	var lat latency.Histogram
	var keysRead atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess, err := newSess()
			if err != nil {
				fail(err)
				return
			}
			defer sess.Close()
			cursor := (seed0 + uint64(w)*records/uint64(workers)) % records
			keys := make([]uint64, batch)
			dst := make([]float32, batch*dim)
			for first := true; first || time.Since(start) < dur; first = false {
				for i := range keys {
					keys[i] = cursor
					cursor = (cursor + 1) % records
				}
				opStart := time.Now()
				if err := sess.GetBatch(keys, dst); err != nil {
					fail(err)
					return
				}
				lat.Since(opStart)
				if err := sess.PutBatch(keys, dst); err != nil {
					fail(err)
					return
				}
				keysRead.Add(int64(batch))
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, latency.Snapshot{}, fmt.Errorf("bench: cluster measure: %w", firstErr)
	}
	return float64(keysRead.Load()) / time.Since(start).Seconds(), lat.Snapshot(), nil
}

// ClusterSweep measures what the routing layer costs and buys: the Zipf
// read workload against one loopback node and against a three-node
// cluster (two primaries plus a read replica of the first), at batch 1
// and 256, under ASP and a finite SSP bound. ASP rows are read-only —
// non-blocking reads fan out in parallel and may land on the replica; SSP
// rows run the balanced GetBatch→PutBatch cycle, where a multi-node batch
// pays the blocking-bound serial gate the single node escapes (its whole
// batch ships in one frame and the server gates it internally).
func (e *Env) ClusterSweep() error {
	s := e.Scale
	records := s.YCSBRecords
	dim := s.Dim
	bufKB := s.BufferKBs[0]
	dur := s.Duration / 4
	if dur < 150*time.Millisecond {
		dur = 150 * time.Millisecond
	}
	const workers = 4
	const sspBound = 64

	e.printf("== Cluster: one logical store across loopback nodes ==\n")
	e.printf("records=%d dim=%d buffer=%dKB workers=%d dur=%s/cell ssp-bound=%d\n",
		records, dim, bufKB, workers, dur, sspBound)
	e.printf("%-7s %-6s %-7s %14s %10s %10s %10s\n",
		"nodes", "bound", "batch", "keys/s", "p50-µs", "p99-µs", "p999-µs")

	for _, nodes := range []int{1, 3} {
		target, teardown, err := e.clusterNodes(nodes, records, bufKB)
		if err != nil {
			return err
		}
		err = e.clusterLeg(target, nodes, records, dim, workers, sspBound, dur)
		teardown()
		if err != nil {
			return err
		}
	}
	return nil
}

func (e *Env) clusterLeg(target string, nodes int, records uint64, dim, workers int, sspBound int64, dur time.Duration) error {
	for _, bc := range []struct {
		name  string
		bound int64
	}{{"asp", mlkv.ASP}, {"ssp", sspBound}} {
		copts := []mlkv.ConnectOption{mlkv.WithConns(workers)}
		if nodes > 1 {
			copts = append(copts, mlkv.WithReadReplicas())
		}
		db, err := mlkv.Connect(target, copts...)
		if err != nil {
			return err
		}
		err = func() error {
			m, err := db.Open("cluster-"+bc.name, dim, mlkv.WithStalenessBound(bc.bound))
			if err != nil {
				return err
			}
			defer m.Close()
			sess := func() (sweepSession, error) { return m.NewSession() }
			if err := loadKeys(sess, records, dim); err != nil {
				return err
			}
			for _, batch := range []int{1, 256} {
				seed := 1201 + uint64(nodes*1000+batch)
				var rate float64
				var lat latency.Snapshot
				if bc.bound == mlkv.ASP {
					rate, lat, err = measureZipf(sess, records, dim, batch, workers, dur, seed)
				} else {
					rate, lat, err = measureClusterMix(sess, records, dim, batch, workers, dur, seed)
				}
				if err != nil {
					return err
				}
				e.printf("%-7d %-6s %-7d %14.0f %10.1f %10.1f %10.1f\n",
					nodes, bc.name, batch, rate,
					latency.Us(lat.P50), latency.Us(lat.P99), latency.Us(lat.P999))
				r := Result{
					Name:      fmt.Sprintf("cluster/nodes=%d/bound=%s/batch=%d", nodes, bc.name, batch),
					OpsPerSec: rate,
					Config: map[string]any{
						"records": records, "dim": dim, "workers": workers,
						"nodes": nodes, "bound": bc.name, "batch": batch,
						"read_replicas": nodes > 1, "zipf": 0.99, "ops": lat.Count,
					},
				}
				r.SetLatency(lat)
				e.Record(r)
			}
			if nodes > 1 {
				if st, err := m.StatsCtx(context.Background()); err == nil {
					e.printf("   nodes=%d bound=%s: replica-reads=%d redirects=%d epoch=%d\n",
						nodes, bc.name, st.ReplicaReads, st.ClusterRedirects, st.ClusterEpoch)
				}
			}
			return nil
		}()
		db.Close()
		if err != nil {
			return err
		}
	}
	return nil
}
