// Package bench is the experiment harness: one runner per table/figure of
// the paper's evaluation, a time-decomposition energy model, and plain-text
// table/series printers. cmd/mlkv-bench drives it.
package bench

import "github.com/llm-db/mlkv-go/internal/train"

// Energy model: the paper reports "approximate energy consumption following
// previous methods [59]–[61]", i.e. device power × busy time. We decompose
// each training run's wall-clock into embedding-access (storage + disk),
// compute (forward+backward), and idle, and charge device powers to each.
// Absolute joules are indicative; the *ordering* across backends follows
// stall time, which we measure directly.
const (
	cpuActiveWatts  = 150.0 // socket under compute
	cpuIdleWatts    = 40.0  // stalled on I/O
	acceleratorWatt = 250.0 // the device the compute stage would occupy
	ssdActiveWatts  = 10.0
)

// JoulesPerBatch estimates energy per batch of batchSize samples from a
// training result.
func JoulesPerBatch(res *train.Result, batchSize int) float64 {
	if res.Samples == 0 {
		return 0
	}
	total := res.Stage.Total().Seconds()
	if total == 0 {
		return 0
	}
	compute := (res.Stage.Forward + res.Stage.Backward).Seconds()
	embAccess := res.Stage.Emb.Seconds()
	// Compute burns CPU+accelerator; embedding access burns idle CPU + SSD,
	// while the accelerator idles at a fraction of its active power.
	joules := compute*(cpuActiveWatts+acceleratorWatt) +
		embAccess*(cpuIdleWatts+ssdActiveWatts+acceleratorWatt*0.25)
	perSample := joules / float64(res.Samples)
	return perSample * float64(batchSize)
}
