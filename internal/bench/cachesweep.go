package bench

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	mlkv "github.com/llm-db/mlkv-go"
	"github.com/llm-db/mlkv-go/internal/core"
	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/latency"
	"github.com/llm-db/mlkv-go/internal/server"
	"github.com/llm-db/mlkv-go/internal/util"
)

// CacheSweep measures what the staleness-aware hot tier buys on the hot
// read path: the same table serves a Zipf(0.99) read workload first with
// no cache and then with a tier holding a quarter of the key space, under
// ASP (where every resident entry is admissible). The store's buffer is
// deliberately the smallest sweep point, so the uncached path pays the
// hybrid log's full cost while the tier absorbs the skewed head of the
// distribution.
func (e *Env) CacheSweep() error {
	s := e.Scale
	records := s.YCSBRecords
	dim := s.Dim
	workers := s.Workers
	if workers < 2 {
		workers = 2
	}
	entries := int(records / 4)
	dur := s.Duration / 2
	if dur < 200*time.Millisecond {
		dur = 200 * time.Millisecond
	}
	bufKB := s.BufferKBs[0]

	e.printf("== Cache: staleness-aware hot tier on the Zipf read path (ASP) ==\n")
	e.printf("records=%d dim=%d buffer=%dKB workers=%d tier=%d entries\n",
		records, dim, bufKB, workers, entries)
	e.printf("%-10s %14s %14s %8s %8s\n", "batch", "cache-off", "cache-on", "ratio", "hit%")

	for _, batch := range []int{1, 32, 256} {
		var rates [2]float64
		var hitPct float64
		for pass, cacheEntries := range []int{0, entries} {
			tbl, err := core.OpenTable(core.Options{
				Dir: e.dir("cache"), Dim: dim, StalenessBound: core.BoundASP,
				MemoryBytes: int64(bufKB) << 10, RecordsPerPage: 256,
				ExpectedKeys: records, CacheEntries: cacheEntries,
			})
			if err != nil {
				return err
			}
			tableSess := func() (sweepSession, error) { return tbl.NewSession() }
			if err := loadKeys(tableSess, records, dim); err != nil {
				tbl.Close()
				return err
			}
			rate, lat, err := measureZipf(tableSess, records, dim, batch, workers, dur, 131)
			if err != nil {
				tbl.Close()
				return err
			}
			rates[pass] = rate
			ts := tbl.TableStats()
			if lookups := ts.CacheHits + ts.CacheMisses; lookups > 0 {
				hitPct = 100 * float64(ts.CacheHits) / float64(lookups)
			}
			tbl.Close()
			r := Result{
				Name:      fmt.Sprintf("zipf-read/batch=%d/cache=%d", batch, cacheEntries),
				OpsPerSec: rate,
				Config: map[string]any{
					"records": records, "dim": dim, "buffer_kb": bufKB,
					"workers": workers, "bound": "asp", "cache_entries": cacheEntries,
					"batch": batch, "zipf": 0.99,
					"cache_hits": ts.CacheHits, "cache_misses": ts.CacheMisses,
					"cache_evictions": ts.CacheEvictions,
				},
			}
			r.SetLatency(lat)
			e.Record(r)
		}
		e.printf("%-10d %14.0f %14.0f %7.2fx %7.1f%%\n",
			batch, rates[0], rates[1], rates[1]/rates[0], hitPct)
	}
	return e.cacheSweepRemote()
}

// cacheSweepRemote is the remote leg of the sweep: the same Zipf read
// workload over a loopback mlkv-server, with the client-side hot tier
// off and on. A tier hit saves the entire framed round trip, which is
// where the hot tier pays for itself hardest.
func (e *Env) cacheSweepRemote() error {
	s := e.Scale
	records := s.YCSBRecords
	dim := s.Dim
	workers := s.Workers
	if workers < 2 {
		workers = 2
	}
	entries := int(records / 4)
	dur := s.Duration / 2
	if dur < 200*time.Millisecond {
		dur = 200 * time.Millisecond
	}
	bufKB := s.BufferKBs[0]

	reg := server.NewRegistry(server.RegistryConfig{
		DefaultBound: faster.BoundAsync,
		Opener: func(id string, d, shards int, bound int64, engine string) (kv.Store, error) {
			return kv.OpenFasterShards(kv.ShardedConfig{
				Dir: e.dir("cache-remote"), Shards: shards, ValueSize: d * 4,
				MemoryBytes: int64(bufKB) << 10, RecordsPerPage: 256,
				ExpectedKeys: records, StalenessBound: bound,
			}, "mlkv")
		},
	})
	defer reg.Close()
	srv := server.New(server.Config{Registry: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveErr
	}()
	db, err := mlkv.Connect(mlkv.Scheme+ln.Addr().String(), mlkv.WithConns(workers))
	if err != nil {
		return err
	}
	defer db.Close()

	e.printf("-- remote (loopback mlkv-server, client-side tier) --\n")
	e.printf("%-10s %14s %14s %8s %8s\n", "batch", "cache-off", "cache-on", "ratio", "hit%")
	for _, batch := range []int{32, 256} {
		var rates [2]float64
		var hitPct float64
		for pass, cacheEntries := range []int{0, entries} {
			opts := []mlkv.Option{mlkv.WithStalenessBound(mlkv.ASP)}
			if cacheEntries > 0 {
				opts = append(opts, mlkv.WithCache(cacheEntries))
			}
			m, err := db.Open(fmt.Sprintf("cache-b%d-c%d", batch, cacheEntries), dim, opts...)
			if err != nil {
				return err
			}
			modelSess := func() (sweepSession, error) { return m.NewSession() }
			if err := loadKeys(modelSess, records, dim); err != nil {
				m.Close()
				return err
			}
			rate, lat, err := measureZipf(modelSess, records, dim, batch, workers, dur, 211)
			if err != nil {
				m.Close()
				return err
			}
			rates[pass] = rate
			st := m.Stats()
			if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
				hitPct = 100 * float64(st.CacheHits) / float64(lookups)
			}
			m.Close()
			r := Result{
				Name:      fmt.Sprintf("zipf-read-remote/batch=%d/cache=%d", batch, cacheEntries),
				OpsPerSec: rate,
				Config: map[string]any{
					"records": records, "dim": dim, "buffer_kb": bufKB,
					"workers": workers, "bound": "asp", "cache_entries": cacheEntries,
					"batch": batch, "zipf": 0.99, "remote": true,
					"cache_hits": st.CacheHits, "cache_misses": st.CacheMisses,
				},
			}
			r.SetLatency(lat)
			e.Record(r)
		}
		e.printf("%-10d %14.0f %14.0f %7.2fx %7.1f%%\n",
			batch, rates[0], rates[1], rates[1]/rates[0], hitPct)
	}
	return nil
}

// sweepSession is the read/write surface the cache sweep drives; both
// core.Session (local leg) and mlkv.Session (remote leg) satisfy it, so
// one loader and one measurer serve both.
type sweepSession interface {
	Get(key uint64, dst []float32) error
	GetBatch(keys []uint64, dst []float32) error
	PutBatch(keys []uint64, vals []float32) error
	Close()
}

// loadKeys writes every key once so the sweep reads a fully materialized
// model.
func loadKeys(newSess func() (sweepSession, error), records uint64, dim int) error {
	sess, err := newSess()
	if err != nil {
		return err
	}
	defer sess.Close()
	const chunk = 1024
	keys := make([]uint64, 0, chunk)
	vals := make([]float32, 0, chunk*dim)
	r := util.NewRNG(3)
	for k := uint64(0); k < records; k++ {
		keys = append(keys, k)
		for d := 0; d < dim; d++ {
			vals = append(vals, r.Float32())
		}
		if len(keys) == chunk || k == records-1 {
			if err := sess.PutBatch(keys, vals); err != nil {
				return err
			}
			keys, vals = keys[:0], vals[:0]
		}
	}
	return nil
}

// measureZipf runs workers sessions issuing Zipf(0.99) reads of the given
// batch size for roughly dur, returning keys read per second and the
// per-operation (one Get or one whole GetBatch) latency distribution
// recorded across every worker. batch 1 uses the scalar Get path. seed0
// varies the key streams between legs.
func measureZipf(newSess func() (sweepSession, error), records uint64, dim, batch, workers int, dur time.Duration, seed0 uint64) (float64, latency.Snapshot, error) {
	var lat latency.Histogram
	var keysRead atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess, err := newSess()
			if err != nil {
				fail(err)
				return
			}
			defer sess.Close()
			zipf := util.NewScrambledZipf(util.NewRNG(seed0+uint64(w)), records, 0.99)
			keys := make([]uint64, batch)
			dst := make([]float32, batch*dim)
			// Every worker completes at least one op even if session
			// setup ate the whole window (heavy contention on a small
			// host), so every committed row carries a real distribution
			// instead of zeroed percentiles.
			for first := true; first || time.Since(start) < dur; first = false {
				opStart := time.Now()
				if batch == 1 {
					if err := sess.Get(zipf.Next(), dst); err != nil {
						fail(err)
						return
					}
				} else {
					for i := range keys {
						keys[i] = zipf.Next()
					}
					if err := sess.GetBatch(keys, dst); err != nil {
						fail(err)
						return
					}
				}
				lat.Since(opStart)
				keysRead.Add(int64(batch))
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, latency.Snapshot{}, fmt.Errorf("bench: cache measure: %w", firstErr)
	}
	return float64(keysRead.Load()) / time.Since(start).Seconds(), lat.Snapshot(), nil
}
