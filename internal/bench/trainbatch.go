package bench

import (
	"context"
	"net"
	"time"

	"github.com/llm-db/mlkv-go/internal/core"
	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/server"
	"github.com/llm-db/mlkv-go/internal/train"
)

// TrainBatchSweep measures what the batched gather/scatter path buys DLRM
// training: the same model, workload, and key ordering run once with the
// scalar per-key access path and once with one GetBatch + one PutBatch
// per minibatch — first over an in-process MLKV table, then against a
// mlkv-server over loopback, where every scalar Get/Put is a framed round
// trip and batching collapses a minibatch's ~2×Fields×Batch trips into
// two. Each configuration gets a fresh store so no run warms another.
func (e *Env) TrainBatchSweep() error {
	s := e.Scale
	bufKB := s.BufferKBs[0]
	keys := s.CTRCard * uint64(s.CTRFields)

	e.printf("== Train-batch: scalar vs batched gather/scatter, DLRM ==\n")
	e.printf("fields=%d dim=%d batch=32 workers=%d duration=%v buffer=%dKB\n",
		s.CTRFields, s.Dim, s.Workers, s.Duration, bufKB)
	e.printf("%-16s %12s %10s %14s %9s\n", "config", "samples/s", "emb%", "emb-µs/sample", "speedup")

	type row struct {
		name   string
		scalar bool
		remote bool
	}
	var baseLocal, baseRemote float64
	for _, r := range []row{
		{"local-scalar", true, false},
		{"local-batched", false, false},
		{"loopback-scalar", true, true},
		{"loopback-batched", false, true},
	} {
		res, err := e.runTrainBatchCTR(r.scalar, r.remote, bufKB, keys)
		if err != nil {
			return err
		}
		tot := res.Stage.Total().Seconds()
		if tot == 0 {
			tot = 1
		}
		embPerSample := 0.0
		if res.Samples > 0 {
			embPerSample = res.Stage.Emb.Seconds() / float64(res.Samples) * 1e6
		}
		speedup := 1.0
		switch {
		case r.scalar && !r.remote:
			baseLocal = res.Throughput
		case r.scalar && r.remote:
			baseRemote = res.Throughput
		case !r.scalar && !r.remote:
			speedup = res.Throughput / baseLocal
		default:
			speedup = res.Throughput / baseRemote
		}
		e.printf("%-16s %12.0f %9.1f%% %14.2f %8.2fx\n",
			r.name, res.Throughput, res.Stage.Emb.Seconds()/tot*100, embPerSample, speedup)
	}
	return nil
}

// runTrainBatchCTR runs one DLRM configuration over a fresh sharded MLKV
// store — in-process, or served over loopback and trained through a
// RemoteBackend.
func (e *Env) runTrainBatchCTR(scalar, remote bool, bufKB int, keys uint64) (*train.Result, error) {
	shards := e.Shards
	if shards <= 1 {
		shards = 4
	}
	if !remote {
		tbl, err := core.OpenTable(core.Options{
			Dir: e.dir("trainbatch"), Dim: e.Scale.Dim, StalenessBound: faster.BoundAsync,
			Shards: shards, MemoryBytes: int64(bufKB) << 10, RecordsPerPage: 256,
			ExpectedKeys: keys, Init: e.ctrInit(),
		})
		if err != nil {
			return nil, err
		}
		defer tbl.Close()
		opts := e.ctrOpts(train.NewTableBackend(tbl, false), train.ModeAsync, 0)
		opts.Scalar = scalar
		return train.TrainCTR(opts)
	}

	store, err := kv.OpenFasterShards(kv.ShardedConfig{
		Dir: e.dir("trainbatch-srv"), Shards: shards, ValueSize: e.Scale.Dim * 4,
		MemoryBytes: int64(bufKB) << 10, ExpectedKeys: keys,
		StalenessBound: faster.BoundAsync,
	}, "mlkv")
	if err != nil {
		return nil, err
	}
	defer store.Close()
	reg := server.NewRegistry(server.RegistryConfig{})
	if _, err := reg.Add("trainbatch", e.Scale.Dim, store); err != nil {
		return nil, err
	}
	srv := server.New(server.Config{Registry: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveErr
	}()
	rb, err := train.DialRemote(ln.Addr().String(), "trainbatch", e.Scale.Dim, e.ctrInit(), e.Scale.Workers+2)
	if err != nil {
		return nil, err
	}
	defer rb.Close()
	opts := e.ctrOpts(rb, train.ModeAsync, 0)
	opts.Scalar = scalar
	return train.TrainCTR(opts)
}
