package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	mlkv "github.com/llm-db/mlkv-go"
	"github.com/llm-db/mlkv-go/internal/data"
	"github.com/llm-db/mlkv-go/internal/models"
	"github.com/llm-db/mlkv-go/internal/train"
	"github.com/llm-db/mlkv-go/internal/util"
)

// TestAllFiguresRunAtTinyScale is the harness integration test: every
// experiment must execute end to end and emit its table.
func TestAllFiguresRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("integration harness; skipped in -short")
	}
	var out bytes.Buffer
	e := NewEnv(Tiny, t.TempDir(), &out)
	for _, fig := range []string{"fig2", "fig8", "fig10"} {
		if err := e.Run(fig); err != nil {
			t.Fatalf("%s: %v\noutput so far:\n%s", fig, err, out.String())
		}
	}
	s := out.String()
	for _, want := range []string{"Figure 2", "Figure 8", "Figure 10", "mlkv", "faster"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

// TestShardSweepRunsAtTinyScale covers the post-paper sharding experiment:
// it must run every shard count end to end and report a speedup column.
func TestShardSweepRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("integration harness; skipped in -short")
	}
	var out bytes.Buffer
	e := NewEnv(Tiny, t.TempDir(), &out)
	if err := e.Run("shards"); err != nil {
		t.Fatalf("shards: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"Sharding", "speedup", "shards"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

// TestFiguresRunSharded re-runs a figure with every table partitioned,
// covering the Env.Shards threading end to end.
func TestFiguresRunSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("integration harness; skipped in -short")
	}
	var out bytes.Buffer
	e := NewEnv(Tiny, t.TempDir(), &out)
	e.Shards = 2
	if err := e.Run("fig8"); err != nil {
		t.Fatalf("fig8 sharded: %v\n%s", err, out.String())
	}
}

func TestFig9And11(t *testing.T) {
	if testing.Short() {
		t.Skip("integration harness; skipped in -short")
	}
	var out bytes.Buffer
	sc := Tiny
	sc.MaxSamples = 1500
	sc.Duration = 300 * time.Millisecond
	e := NewEnv(sc, t.TempDir(), &out)
	for _, fig := range []string{"fig9", "fig11"} {
		if err := e.Run(fig); err != nil {
			t.Fatalf("%s: %v\n%s", fig, err, out.String())
		}
	}
	if !strings.Contains(out.String(), "BETA") && !strings.Contains(out.String(), "beta") {
		t.Fatal("fig9b output missing BETA variants")
	}
}

func TestFig6And7(t *testing.T) {
	if testing.Short() {
		t.Skip("integration harness; skipped in -short")
	}
	var out bytes.Buffer
	sc := Tiny
	sc.MaxSamples = 1200
	sc.Duration = 300 * time.Millisecond
	e := NewEnv(sc, t.TempDir(), &out)
	for _, fig := range []string{"fig6", "fig7"} {
		if err := e.Run(fig); err != nil {
			t.Fatalf("%s: %v\n%s", fig, err, out.String())
		}
	}
	for _, want := range []string{"lsm", "bptree", "J/batch", "native"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestScaleByName(t *testing.T) {
	for _, n := range []string{"tiny", "small", "paper", ""} {
		if _, err := ScaleByName(n); err != nil {
			t.Fatalf("scale %q rejected: %v", n, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Fatal("bogus scale accepted")
	}
}

func TestJoulesPerBatch(t *testing.T) {
	res := &train.Result{Samples: 1000}
	res.Stage.Emb = 2 * time.Second
	res.Stage.Forward = 1 * time.Second
	res.Stage.Backward = 1 * time.Second
	j := JoulesPerBatch(res, 32)
	if j <= 0 {
		t.Fatalf("J/batch = %v", j)
	}
	// More stall time must cost more energy per batch (same sample count).
	res2 := &train.Result{Samples: 1000}
	res2.Stage.Emb = 8 * time.Second
	res2.Stage.Forward = 1 * time.Second
	res2.Stage.Backward = 1 * time.Second
	if JoulesPerBatch(res2, 32) <= j {
		t.Fatal("stall time should increase energy per batch")
	}
	if JoulesPerBatch(&train.Result{}, 32) != 0 {
		t.Fatal("empty result should cost 0")
	}
	_ = models.FFNN
	_ = data.CTRConfig{}
}

// TestTrainBatchSweepRunsAtTinyScale covers the gather/scatter experiment:
// all four configurations (scalar/batched × local/loopback) must train end
// to end and report their throughput rows.
func TestTrainBatchSweepRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("integration harness; skipped in -short")
	}
	var out bytes.Buffer
	sc := Tiny
	sc.MaxSamples = 1500
	e := NewEnv(sc, t.TempDir(), &out)
	if err := e.Run("trainbatch"); err != nil {
		t.Fatalf("trainbatch: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"local-scalar", "local-batched", "loopback-scalar", "loopback-batched", "speedup"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

// benchCTRSamples backs the CI bench-smoke: one DLRM training sample per
// iteration over an in-memory backend, so a -benchtime=1x run exercises
// the full step pipeline on both access paths.
func benchCTRSamples(b *testing.B, scalar bool) {
	gen := data.NewCTRGen(data.CTRConfig{Fields: 4, DenseDim: 2, FieldCard: 2000, Seed: 3})
	model := models.NewDLRM(models.FFNN, 4, 8, 2, []int{16}, 5)
	backend := train.NewMemBackend("mem", 8, nil)
	res, err := train.TrainCTR(train.CTROptions{
		Gen: gen, Model: model, Backend: backend,
		Workers: 1, Batch: 32, Mode: train.ModeAsync,
		DenseLR: 0.05, EmbLR: 0.05, Scalar: scalar,
		MaxSamples: int64(b.N),
	})
	if err != nil {
		b.Fatal(err)
	}
	if res.Samples < int64(b.N) {
		b.Fatalf("trained %d of %d samples", res.Samples, b.N)
	}
}

func BenchmarkCTRSampleScalar(b *testing.B)  { benchCTRSamples(b, true) }
func BenchmarkCTRSampleBatched(b *testing.B) { benchCTRSamples(b, false) }

// TestNetworkSweepRunsAtTinyScale covers the serving-layer experiment:
// local vs loopback throughput must be measured at every batch size.
func TestNetworkSweepRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("integration harness; skipped in -short")
	}
	var out bytes.Buffer
	e := NewEnv(Tiny, t.TempDir(), &out)
	if err := e.Run("network"); err != nil {
		t.Fatalf("network: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"loopback", "remote-keys/s", "ratio", "256"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

// TestLatencySweepRunsAtTinyScale covers the tail-latency experiment:
// every (tier, cache, batch, workers) cell must run end to end, and every
// recorded result must carry non-zero percentiles — the invariant the
// committed BENCH_latency.json depends on.
func TestLatencySweepRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("integration harness; skipped in -short")
	}
	var out bytes.Buffer
	sc := Tiny
	sc.Duration = 200 * time.Millisecond
	e := NewEnv(sc, t.TempDir(), &out)
	if err := e.Run("latency"); err != nil {
		t.Fatalf("latency: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"local", "remote", "p99-µs", "p999-µs"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	// 7 legs — local and remote × 2 cache settings each, the flush-pace
	// pair (unpaced vs paced), and the hedged remote leg — each swept
	// over 2 batch sizes × len(Threads) workers.
	if want := 7 * 2 * len(sc.Threads); len(e.results) != want {
		t.Fatalf("recorded %d results, want %d", len(e.results), want)
	}
	for _, r := range e.results {
		if r.P50Us <= 0 || r.P99Us <= 0 || r.P999Us <= 0 || r.P99Us < r.P50Us {
			t.Fatalf("%s: implausible percentiles p50=%v p90=%v p99=%v p999=%v",
				r.Name, r.P50Us, r.P90Us, r.P99Us, r.P999Us)
		}
	}
}

// TestClusterSweepRunsAtTinyScale covers the routing-layer experiment:
// both node counts must run both bounds and batch sizes end to end, every
// recorded row must carry real percentiles, and the three-node rows must
// actually have used the replica (the ASP leg reads through it).
func TestClusterSweepRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("integration harness; skipped in -short")
	}
	var out bytes.Buffer
	sc := Tiny
	sc.Duration = 200 * time.Millisecond
	e := NewEnv(sc, t.TempDir(), &out)
	if err := e.Run("cluster"); err != nil {
		t.Fatalf("cluster: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"Cluster", "nodes", "asp", "ssp", "replica-reads", "p99-µs"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	// 2 node counts × 2 bounds × 2 batch sizes.
	if want := 2 * 2 * 2; len(e.results) != want {
		t.Fatalf("recorded %d results, want %d", len(e.results), want)
	}
	for _, r := range e.results {
		if r.OpsPerSec <= 0 || r.P50Us <= 0 || r.P99Us <= 0 || r.P99Us < r.P50Us {
			t.Fatalf("%s: implausible row rate=%v p50=%v p99=%v", r.Name, r.OpsPerSec, r.P50Us, r.P99Us)
		}
	}
}

// BenchmarkCluster backs the CI bench-smoke for the routing layer: each
// iteration is one batch-256 ASP GetBatch routed across a three-node
// loopback cluster with read replicas on.
func BenchmarkCluster(b *testing.B) {
	e := NewEnv(Tiny, b.TempDir(), io.Discard)
	const records, dim, batch = 1 << 10, 8, 256
	target, teardown, err := e.clusterNodes(3, records, 256)
	if err != nil {
		b.Fatal(err)
	}
	defer teardown()
	db, err := mlkv.Connect(target, mlkv.WithConns(2), mlkv.WithReadReplicas())
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	m, err := db.Open("bench", dim, mlkv.WithStalenessBound(mlkv.ASP))
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	sess := func() (sweepSession, error) { return m.NewSession() }
	if err := loadKeys(sess, records, dim); err != nil {
		b.Fatal(err)
	}
	s, err := m.NewSession()
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	keys := make([]uint64, batch)
	dst := make([]float32, batch*dim)
	zipf := util.NewScrambledZipf(util.NewRNG(17), records, 0.99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range keys {
			keys[j] = zipf.Next()
		}
		if err := s.GetBatch(keys, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFailoverSweepRunsAtTinyScale covers the failover experiment: every
// kill-the-primary trial must recover within its budget and the recorded
// result must carry a real recovery-latency distribution.
func TestFailoverSweepRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("integration harness; skipped in -short")
	}
	var out bytes.Buffer
	e := NewEnv(Tiny, t.TempDir(), &out)
	if err := e.Run("failover"); err != nil {
		t.Fatalf("failover: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"Failover", "kill-to-first-acked-write", "recovery-ms", "suspect-after"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	if len(e.results) != 1 {
		t.Fatalf("recorded %d results, want 1", len(e.results))
	}
	r := e.results[0]
	if r.P50Us <= 0 || r.P999Us < r.P50Us {
		t.Fatalf("%s: implausible recovery percentiles p50=%v p999=%v", r.Name, r.P50Us, r.P999Us)
	}
	// Recovery must beat the detector's worst case by a wide margin of the
	// configured timeouts, not scrape the 30s trial budget.
	if r.P999Us > 10e6 {
		t.Fatalf("%s: recovery p999 %vµs exceeds 10s", r.Name, r.P999Us)
	}
}

// BenchmarkFailover backs the CI bench-smoke for the failover path: each
// iteration is one full kill-the-primary cycle — detect, promote, and ack
// a client write on the new topology.
func BenchmarkFailover(b *testing.B) {
	e := NewEnv(Tiny, b.TempDir(), io.Discard)
	for i := 0; i < b.N; i++ {
		if _, err := e.failoverTrial(i, failoverBenchHealth); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEngineSweepRunsAtTinyScale covers the bake-off experiment: every
// engine must complete both YCSB mixes and the public-API read leg, and
// the report must carry one row per engine in each table.
func TestEngineSweepRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("integration harness; skipped in -short")
	}
	var out bytes.Buffer
	e := NewEnv(Tiny, t.TempDir(), &out)
	if err := e.Run("engines"); err != nil {
		t.Fatalf("engines: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"read-heavy", "update-heavy", "public API",
		"faster", "lsm", "bptree", "vs-faster",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}
