package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/llm-db/mlkv-go/internal/bptree"
	"github.com/llm-db/mlkv-go/internal/core"
	"github.com/llm-db/mlkv-go/internal/data"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/lsm"
	"github.com/llm-db/mlkv-go/internal/models"
	"github.com/llm-db/mlkv-go/internal/train"
)

// Scale sizes every experiment. Tests use Tiny; the CLI defaults to Small;
// Paper raises entity counts toward the datasets of Table II.
type Scale struct {
	Name        string
	Dim         int
	CTRFields   int
	CTRCard     uint64
	KGEntities  uint64
	GraphNodes  uint64
	Workers     int
	Duration    time.Duration // per training run
	MaxSamples  int64         // cap per run (0 = duration only)
	BufferKBs   []int         // buffer-size sweep points
	YCSBRecords uint64
	YCSBOps     int64
	ValueSizes  []int
	Threads     []int
}

// Tiny is the test scale (sub-second runs).
var Tiny = Scale{
	Name: "tiny", Dim: 8, CTRFields: 4, CTRCard: 2000,
	KGEntities: 2000, GraphNodes: 2000, Workers: 2,
	Duration: 400 * time.Millisecond, MaxSamples: 4000,
	BufferKBs:   []int{64, 256},
	YCSBRecords: 4000, YCSBOps: 20000,
	ValueSizes: []int{16, 64},
	Threads:    []int{1, 4},
}

// Small is the CLI default (minutes on a laptop).
var Small = Scale{
	Name: "small", Dim: 16, CTRFields: 8, CTRCard: 200000,
	KGEntities: 500000, GraphNodes: 200000, Workers: 4,
	Duration:    5 * time.Second,
	BufferKBs:   []int{1024, 4096, 16384, 65536},
	YCSBRecords: 1 << 20, YCSBOps: 2 << 20,
	ValueSizes: []int{16, 32, 64, 128, 256},
	Threads:    []int{2, 4, 8, 16, 32},
}

// Paper approaches the magnitude of Table II (hours; needs disk and RAM).
var Paper = Scale{
	Name: "paper", Dim: 16, CTRFields: 26, CTRCard: 30_000_000,
	KGEntities: 80_000_000, GraphNodes: 100_000_000, Workers: 8,
	Duration:    10 * time.Minute,
	BufferKBs:   []int{4 << 20, 8 << 20, 16 << 20, 36 << 20},
	YCSBRecords: 1 << 27, YCSBOps: 1 << 27,
	ValueSizes: []int{16, 32, 64, 128, 256},
	Threads:    []int{2, 4, 8, 16, 32},
}

// ScaleByName resolves a scale flag value.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "tiny":
		return Tiny, nil
	case "small", "":
		return Small, nil
	case "paper":
		return Paper, nil
	}
	return Scale{}, fmt.Errorf("bench: unknown scale %q (tiny|small|paper)", name)
}

// Env carries run-wide context.
type Env struct {
	Scale   Scale
	WorkDir string
	Out     io.Writer
	// Shards hash-partitions every MLKV/FASTER table the experiments open
	// (0 or 1 = unsharded). The "shards" experiment sweeps shard counts
	// itself and ignores this.
	Shards int
	// JSONDir, when set, makes Run write each experiment's recorded
	// measurements to BENCH_<experiment>.json under it (the repo's tracked
	// perf trajectory).
	JSONDir string
	// HedgeDelay fixes the hedge trigger of the latency experiment's
	// hedged remote rows (the -hedge flag); 0 uses the adaptive delay
	// derived from the pool's own observed tail.
	HedgeDelay time.Duration
	n       int
	results []Result
}

// NewEnv builds an Env writing results to out and data under workDir.
func NewEnv(scale Scale, workDir string, out io.Writer) *Env {
	return &Env{Scale: scale, WorkDir: workDir, Out: out}
}

func (e *Env) dir(tag string) string {
	e.n++
	d := filepath.Join(e.WorkDir, fmt.Sprintf("%s-%d", tag, e.n))
	os.MkdirAll(d, 0o755)
	return d
}

func (e *Env) printf(format string, args ...any) {
	fmt.Fprintf(e.Out, format, args...)
}

// mlkvTable opens a core.Table sized to bufKB kilobytes of memory,
// partitioned across e.Shards shards.
func (e *Env) mlkvTable(tag string, dim int, bound int64, bufKB int, expectedKeys uint64, init core.Initializer) (*core.Table, error) {
	return core.OpenTable(core.Options{
		Dir: e.dir(tag), Dim: dim, StalenessBound: bound, Shards: e.Shards,
		MemoryBytes: int64(bufKB) << 10, RecordsPerPage: 256,
		ExpectedKeys: expectedKeys, Init: init,
	})
}

// backendSet builds the Figure 7 engine lineup at one buffer size.
func (e *Env) backendSet(dim int, bound int64, bufKB int, keys uint64, init core.Initializer) (map[string]train.Backend, func(), error) {
	closers := []func(){}
	out := map[string]train.Backend{}

	mt, err := e.mlkvTable("mlkv", dim, bound, bufKB, keys, init)
	if err != nil {
		return nil, nil, err
	}
	closers = append(closers, func() { mt.Close() })
	out["mlkv"] = train.NewTableBackend(mt, true)

	ft, err := e.mlkvTable("faster", dim, core.BoundDisabled, bufKB, keys, init)
	if err != nil {
		return nil, nil, err
	}
	closers = append(closers, func() { ft.Close() })
	out["faster"] = train.NewTableBackend(ft, false)

	ls, err := lsm.Open(lsm.Config{
		Dir: e.dir("lsm"), ValueSize: dim * 4,
		MemtableBytes: bufKB << 9, CacheBytes: bufKB << 9, // split budget half/half
	})
	if err != nil {
		return nil, nil, err
	}
	closers = append(closers, func() { ls.Close() })
	out["lsm"] = train.NewKVBackend(kv.WrapLSM(ls), dim, init)

	pool := (bufKB << 10) / 4096
	bt, err := bptree.Open(bptree.Config{
		Dir: e.dir("bptree"), ValueSize: dim * 4, PoolPages: pool,
	})
	if err != nil {
		return nil, nil, err
	}
	closers = append(closers, func() { bt.Close() })
	out["bptree"] = train.NewKVBackend(kv.WrapBPTree(bt), dim, init)

	closeAll := func() {
		for _, c := range closers {
			c()
		}
	}
	return out, closeAll, nil
}

// ctrOpts builds standard CTR training options on a backend.
func (e *Env) ctrOpts(b train.Backend, mode train.Mode, lookahead int) train.CTROptions {
	s := e.Scale
	gen := data.NewCTRGen(data.CTRConfig{
		Fields: s.CTRFields, DenseDim: 4, FieldCard: s.CTRCard, Seed: 11,
	})
	model := models.NewDLRM(models.FFNN, s.CTRFields, s.Dim, 4, []int{32}, 13)
	return train.CTROptions{
		Gen: gen, Model: model, Backend: b,
		Workers: s.Workers, Batch: 32, Mode: mode,
		DenseLR: 0.05, EmbLR: 0.05,
		Duration: s.Duration, MaxSamples: s.MaxSamples,
		LookaheadDepth: lookahead,
	}
}

func (e *Env) kgeOpts(b train.Backend, lookahead int, beta bool) train.KGEOptions {
	s := e.Scale
	gen := data.NewKGGen(data.KGConfig{Entities: s.KGEntities, Relations: 16, Clusters: 32, Seed: 17})
	model := models.NewKGE(models.DistMult, s.Dim)
	return train.KGEOptions{
		Gen: gen, Model: model, Backend: b,
		Workers: s.Workers, Negatives: 4, EmbLR: 0.1,
		Duration: s.Duration, MaxSamples: s.MaxSamples,
		LookaheadDepth: lookahead, BETA: beta,
	}
}

func (e *Env) gnnOpts(b train.Backend, lookahead int) train.GNNOptions {
	s := e.Scale
	graph := data.NewGraphGen(data.GraphConfig{Nodes: s.GraphNodes, Classes: 8, Seed: 19})
	sage := models.NewGraphSage(s.Dim, 32, 8, 23)
	return train.GNNOptions{
		Graph: graph, Kind: train.KindGraphSage, Sage: sage, Backend: b,
		Workers: s.Workers, Fanout: 4, Fanout2: 4,
		DenseLR: 0.05, EmbLR: 0.05, Batch: 16,
		Duration: s.Duration, MaxSamples: s.MaxSamples,
		LookaheadDepth: lookahead,
	}
}

// kgeInit is the embedding initializer for multiplicative scorers.
func (e *Env) kgeInit() core.Initializer { return core.UniformInit(0.5, 7) }

// ctrInit initializes CTR/GNN embeddings.
func (e *Env) ctrInit() core.Initializer { return core.UniformInit(0.1, 7) }
