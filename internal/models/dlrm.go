// Package models implements the embedding models the paper evaluates:
// DLRMs (FFNN and DCN) for click-through-rate prediction, knowledge-graph
// embedding scorers (DistMult and ComplEx) for link prediction, and GNNs
// (GraphSage and GAT) for node classification. Each model consumes
// embeddings fetched from storage and produces gradients with respect to
// them, which the training pipelines write back through MLKV's Put/RMW.
package models

import (
	"fmt"

	"github.com/llm-db/mlkv-go/internal/nn"
	"github.com/llm-db/mlkv-go/internal/tensor"
)

// DLRMKind selects the dense architecture.
type DLRMKind int

const (
	// FFNN is a plain fully connected tower over [dense ‖ embeddings].
	FFNN DLRMKind = iota
	// DCN adds a cross network in parallel with the deep tower.
	DCN
)

// String names the interaction variant for benchmark output.
func (k DLRMKind) String() string {
	if k == DCN {
		return "DCN"
	}
	return "FFNN"
}

// DLRM is a deep-learning recommendation model: m categorical fields embed
// to Dim-vectors (fetched from storage), concatenated with DenseDim dense
// features, and fed to the dense network.
type DLRM struct {
	Kind     DLRMKind
	Fields   int
	Dim      int
	DenseDim int

	ffnn  *nn.MLP        // FFNN tower (Kind == FFNN)
	cross *nn.CrossStack // DCN pieces (Kind == DCN)
	deep  *nn.MLP
	comb  *nn.MLP
}

// NewDLRM builds a DLRM. hidden configures the tower widths.
func NewDLRM(kind DLRMKind, fields, dim, denseDim int, hidden []int, seed uint64) *DLRM {
	in := denseDim + fields*dim
	m := &DLRM{Kind: kind, Fields: fields, Dim: dim, DenseDim: denseDim}
	switch kind {
	case FFNN:
		sizes := append([]int{in}, hidden...)
		sizes = append(sizes, 1)
		m.ffnn = nn.NewMLP(sizes, seed)
	case DCN:
		m.cross = nn.NewCrossStack(in, 3, seed)
		deepSizes := append([]int{in}, hidden...)
		m.deep = nn.NewMLP(deepSizes, seed+1)
		m.comb = nn.NewMLP([]int{in + hidden[len(hidden)-1], 1}, seed+2)
	}
	return m
}

// InputDim returns the dense-network input width.
func (m *DLRM) InputDim() int { return m.DenseDim + m.Fields*m.Dim }

// DLRMWorker holds one goroutine's activations and gradient accumulators.
type DLRMWorker struct {
	m     *DLRM
	x0    []float32
	dEmb  []float32
	ffnn  *nn.MLPWorker
	cross *nn.CrossWorker
	deep  *nn.MLPWorker
	comb  *nn.MLPWorker
	cat   []float32 // DCN: [crossOut ‖ deepOut]
	dcat  []float32
}

// NewWorker allocates a worker context.
func (m *DLRM) NewWorker() *DLRMWorker {
	w := &DLRMWorker{
		m:    m,
		x0:   make([]float32, m.InputDim()),
		dEmb: make([]float32, m.Fields*m.Dim),
	}
	switch m.Kind {
	case FFNN:
		w.ffnn = m.ffnn.NewWorker()
	case DCN:
		w.cross = m.cross.NewWorker()
		w.deep = m.deep.NewWorker()
		w.comb = m.comb.NewWorker()
		hid := m.deep.Sizes[len(m.deep.Sizes)-1]
		w.cat = make([]float32, m.InputDim()+hid)
		w.dcat = make([]float32, m.InputDim()+hid)
	}
	return w
}

// Forward computes the CTR logit for one sample. embs is the concatenation
// of the Fields embeddings (Fields×Dim floats).
func (w *DLRMWorker) Forward(dense, embs []float32) (float32, error) {
	m := w.m
	if len(dense) != m.DenseDim || len(embs) != m.Fields*m.Dim {
		return 0, fmt.Errorf("models: DLRM input dims (%d,%d) != (%d,%d)", len(dense), len(embs), m.DenseDim, m.Fields*m.Dim)
	}
	copy(w.x0, dense)
	copy(w.x0[m.DenseDim:], embs)
	switch m.Kind {
	case FFNN:
		return w.ffnn.Forward(w.x0)[0], nil
	default: // DCN
		co := w.cross.Forward(w.x0)
		do := w.deep.Forward(w.x0)
		copy(w.cat, co)
		copy(w.cat[len(co):], do)
		return w.comb.Forward(w.cat)[0], nil
	}
}

// Backward accumulates dense-parameter gradients for the last Forward and
// returns the gradient w.r.t. the embeddings (worker-owned slice).
func (w *DLRMWorker) Backward(dLogit float32) []float32 {
	m := w.m
	switch m.Kind {
	case FFNN:
		dx := w.ffnn.Backward([]float32{dLogit})
		copy(w.dEmb, dx[m.DenseDim:])
	default: // DCN
		dcat := w.comb.Backward([]float32{dLogit})
		copy(w.dcat, dcat)
		in := m.InputDim()
		dxc := w.cross.Backward(w.dcat[:in])
		dxd := w.deep.Backward(w.dcat[in:])
		for i := 0; i < m.Fields*m.Dim; i++ {
			w.dEmb[i] = dxc[m.DenseDim+i] + dxd[m.DenseDim+i]
		}
	}
	return w.dEmb
}

// Step runs forward + loss + backward for one labeled sample and returns
// (loss, predicted probability, embedding gradient).
func (w *DLRMWorker) Step(dense, embs []float32, label float32) (loss, prob float32, dEmb []float32, err error) {
	logit, err := w.Forward(dense, embs)
	if err != nil {
		return 0, 0, nil, err
	}
	loss, dLogit := nn.BCEWithLogits(logit, label)
	dEmb = w.Backward(dLogit)
	return loss, tensor.Sigmoid(logit), dEmb, nil
}

// Predict computes the probability without touching gradients.
func (w *DLRMWorker) Predict(dense, embs []float32) (float32, error) {
	logit, err := w.Forward(dense, embs)
	if err != nil {
		return 0, err
	}
	return tensor.Sigmoid(logit), nil
}

// Apply folds accumulated dense gradients into the shared parameters.
func (w *DLRMWorker) Apply(lr float32) {
	switch w.m.Kind {
	case FFNN:
		w.ffnn.Apply(lr)
	default:
		w.comb.Apply(lr)
		w.cross.Apply(lr)
		w.deep.Apply(lr)
	}
}
