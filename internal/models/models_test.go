package models

import (
	"math"
	"testing"

	"github.com/llm-db/mlkv-go/internal/util"
)

func randVec(r *util.RNG, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = r.Float32()*2 - 1
	}
	return v
}

func numGrad32(f func() float32, x []float32, i int) float32 {
	const h = 1e-3
	orig := x[i]
	x[i] = orig + h
	fp := float64(f())
	x[i] = orig - h
	fm := float64(f())
	x[i] = orig
	return float32((fp - fm) / (2 * h))
}

func approx(a, b float32, tol float64) bool {
	return math.Abs(float64(a-b)) <= tol*(1+math.Abs(float64(b)))
}

// --- DLRM ---

func TestDLRMGradCheckEmbeddings(t *testing.T) {
	for _, kind := range []DLRMKind{FFNN, DCN} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			m := NewDLRM(kind, 3, 4, 2, []int{8}, 1)
			w := m.NewWorker()
			r := util.NewRNG(2)
			dense := randVec(r, 2)
			embs := randVec(r, 12)
			label := float32(1)
			lossAt := func() float32 {
				logit, _ := w.Forward(dense, embs)
				l, _ := bceLoss(logit, label)
				return l
			}
			loss, _, dEmb, err := w.Step(dense, embs, label)
			if err != nil || loss <= 0 {
				t.Fatalf("step: loss=%v err=%v", loss, err)
			}
			for i := range embs {
				want := numGrad32(lossAt, embs, i)
				if !approx(dEmb[i], want, 2e-2) {
					t.Errorf("emb grad %d: analytic %v numeric %v", i, dEmb[i], want)
				}
			}
		})
	}
}

func bceLoss(logit, label float32) (float32, float32) {
	p := 1 / (1 + expf32(-logit))
	eps := float32(1e-7)
	if label > 0.5 {
		return -logf32(p + eps), p - label
	}
	return -logf32(1 - p + eps), p - label
}

func TestDLRMLearnsSyntheticSignal(t *testing.T) {
	// Label depends on the first embedding's first component; the model must
	// drive loss down via dense + embedding updates.
	m := NewDLRM(FFNN, 2, 4, 2, []int{8}, 3)
	w := m.NewWorker()
	r := util.NewRNG(4)
	// Fixed small embedding table updated by hand.
	table := make([][]float32, 20)
	labels := make([]float32, 20)
	for i := range table {
		table[i] = randVec(r, 4)
		if table[i][0] > 0 {
			labels[i] = 1
		}
	}
	dense := []float32{0.5, -0.5}
	var lastAvg float32
	for epoch := 0; epoch < 200; epoch++ {
		var sum float32
		for it := 0; it < 100; it++ {
			k1 := int(r.Uint64n(20))
			k2 := int(r.Uint64n(20))
			label := labels[k1]
			embs := append(append([]float32(nil), table[k1]...), table[k2]...)
			loss, _, dEmb, _ := w.Step(dense, embs, label)
			sum += loss
			for i := 0; i < 4; i++ {
				table[k1][i] -= 0.1 * dEmb[i]
				table[k2][i] -= 0.1 * dEmb[4+i]
			}
			if it%10 == 9 {
				w.Apply(0.1)
			}
		}
		lastAvg = sum / 100
	}
	if lastAvg > 0.5 {
		t.Fatalf("DLRM failed to learn: final avg loss %v", lastAvg)
	}
}

// --- KGE ---

func TestKGEGradCheck(t *testing.T) {
	for _, kind := range []KGEKind{DistMult, ComplEx} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			const dim = 8
			m := NewKGE(kind, dim)
			r := util.NewRNG(5)
			h, rel, tl := randVec(r, dim), randVec(r, dim), randVec(r, dim)
			neg := [][]float32{randVec(r, dim), randVec(r, dim)}
			lossAt := func() float32 {
				dh := make([]float32, dim)
				dr := make([]float32, dim)
				dt := make([]float32, dim)
				dn := [][]float32{make([]float32, dim), make([]float32, dim)}
				return m.TripleLoss(h, rel, tl, neg, dh, dr, dt, dn)
			}
			dh := make([]float32, dim)
			dr := make([]float32, dim)
			dt := make([]float32, dim)
			dn := [][]float32{make([]float32, dim), make([]float32, dim)}
			m.TripleLoss(h, rel, tl, neg, dh, dr, dt, dn)
			for i := 0; i < dim; i++ {
				if want := numGrad32(lossAt, h, i); !approx(dh[i], want, 2e-2) {
					t.Errorf("dh[%d]: analytic %v numeric %v", i, dh[i], want)
				}
				if want := numGrad32(lossAt, rel, i); !approx(dr[i], want, 2e-2) {
					t.Errorf("dr[%d]: analytic %v numeric %v", i, dr[i], want)
				}
				if want := numGrad32(lossAt, tl, i); !approx(dt[i], want, 2e-2) {
					t.Errorf("dt[%d]: analytic %v numeric %v", i, dt[i], want)
				}
				if want := numGrad32(lossAt, neg[0], i); !approx(dn[0][i], want, 2e-2) {
					t.Errorf("dneg[%d]: analytic %v numeric %v", i, dn[0][i], want)
				}
			}
		})
	}
}

func TestKGETrainingSeparatesPositives(t *testing.T) {
	const dim = 8
	m := NewKGE(DistMult, dim)
	r := util.NewRNG(6)
	ents := make([][]float32, 30)
	for i := range ents {
		ents[i] = randVec(r, dim)
	}
	rel := randVec(r, dim)
	// Ground truth: entity i links to entity (i+1)%30 under rel.
	lr := float32(0.1)
	for epoch := 0; epoch < 300; epoch++ {
		for i := 0; i < 30; i++ {
			h, tl := ents[i], ents[(i+1)%30]
			negIdx := int(r.Uint64n(30))
			for negIdx == (i+1)%30 {
				negIdx = int(r.Uint64n(30))
			}
			neg := [][]float32{ents[negIdx]}
			dh := make([]float32, dim)
			dr := make([]float32, dim)
			dt := make([]float32, dim)
			dn := [][]float32{make([]float32, dim)}
			m.TripleLoss(h, rel, tl, neg, dh, dr, dt, dn)
			for j := 0; j < dim; j++ {
				h[j] -= lr * dh[j]
				rel[j] -= lr * dr[j]
				tl[j] -= lr * dt[j]
				neg[0][j] -= lr * dn[0][j]
			}
		}
	}
	// Positive scores must dominate random negatives.
	hits := 0
	for i := 0; i < 30; i++ {
		negs := make([][]float32, 10)
		for j := range negs {
			negs[j] = ents[int(r.Uint64n(30))]
		}
		hits += m.HitsAtK(ents[i], rel, ents[(i+1)%30], negs, 3)
	}
	if hits < 20 {
		t.Fatalf("Hits@3 after training = %d/30, model failed to learn", hits)
	}
}

func TestComplExDimValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd ComplEx dim accepted")
		}
	}()
	NewKGE(ComplEx, 7)
}

// --- GraphSage ---

func TestGraphSageGradCheck(t *testing.T) {
	const dim, hidden, classes, fanout = 4, 6, 3, 2
	g := NewGraphSage(dim, hidden, classes, 7)
	w := g.NewWorker(fanout)
	r := util.NewRNG(8)
	eSelf := [][]float32{randVec(r, dim), randVec(r, dim), randVec(r, dim)}
	eMean := [][]float32{randVec(r, dim), randVec(r, dim), randVec(r, dim)}
	label := 1
	lossAt := func() float32 {
		logits := w.Forward(eSelf, eMean)
		probs := make([]float32, classes)
		dl := make([]float32, classes)
		return ceLoss(logits, label, probs, dl)
	}
	_, _, dSelf, dMean := w.Step(eSelf, eMean, label)
	for n := 0; n <= fanout; n++ {
		for i := 0; i < dim; i++ {
			if want := numGrad32(lossAt, eSelf[n], i); !approx(dSelf[n][i], want, 3e-2) {
				t.Errorf("dSelf[%d][%d]: analytic %v numeric %v", n, i, dSelf[n][i], want)
			}
			if want := numGrad32(lossAt, eMean[n], i); !approx(dMean[n][i], want, 3e-2) {
				t.Errorf("dMean[%d][%d]: analytic %v numeric %v", n, i, dMean[n][i], want)
			}
		}
	}
}

func ceLoss(logits []float32, label int, probs, dl []float32) float32 {
	maxv := logits[0]
	for _, v := range logits[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float32
	for i, v := range logits {
		probs[i] = expf32(v - maxv)
		sum += probs[i]
	}
	return -logf32(probs[label]/sum + 1e-7)
}

// --- GAT ---

func TestGATGradCheck(t *testing.T) {
	const dim, hidden, classes, fanout, fanout2 = 3, 5, 2, 2, 2
	g := NewGAT(dim, hidden, classes, 9)
	w := g.NewWorker(fanout, fanout2)
	r := util.NewRNG(10)
	inputs := make([][][]float32, fanout+1)
	for i := range inputs {
		inputs[i] = make([][]float32, fanout2+1)
		for j := range inputs[i] {
			inputs[i][j] = randVec(r, dim)
		}
	}
	label := 0
	lossAt := func() float32 {
		logits := w.Forward(inputs)
		probs := make([]float32, classes)
		dl := make([]float32, classes)
		return ceLoss(logits, label, probs, dl)
	}
	_, _, dIn := w.Step(inputs, label)
	for i := range inputs {
		for j := range inputs[i] {
			for k := 0; k < dim; k++ {
				want := numGrad32(lossAt, inputs[i][j], k)
				if !approx(dIn[i][j][k], want, 3e-2) {
					t.Errorf("dIn[%d][%d][%d]: analytic %v numeric %v", i, j, k, dIn[i][j][k], want)
				}
			}
		}
	}
}

func TestGNNsLearnSeparableCommunities(t *testing.T) {
	// Nodes in community c have embeddings near the community centroid;
	// label = community. Both GNNs should fit quickly.
	const dim, hidden, classes, fanout = 8, 16, 3, 3
	r := util.NewRNG(11)
	centro := make([][]float32, classes)
	for c := range centro {
		centro[c] = randVec(r, dim)
	}
	mkNode := func(c int) []float32 {
		v := append([]float32(nil), centro[c]...)
		for i := range v {
			v[i] += (r.Float32()*2 - 1) * 0.1
		}
		return v
	}
	g := NewGraphSage(dim, hidden, classes, 12)
	w := g.NewWorker(fanout)
	for it := 0; it < 3000; it++ {
		c := int(r.Uint64n(classes))
		eSelf := make([][]float32, fanout+1)
		eMean := make([][]float32, fanout+1)
		for i := range eSelf {
			eSelf[i] = mkNode(c)
			eMean[i] = mkNode(c)
		}
		w.Step(eSelf, eMean, c)
		if it%8 == 7 {
			w.Apply(0.05)
		}
	}
	correct := 0
	const evals = 300
	for it := 0; it < evals; it++ {
		c := int(r.Uint64n(classes))
		eSelf := make([][]float32, fanout+1)
		eMean := make([][]float32, fanout+1)
		for i := range eSelf {
			eSelf[i] = mkNode(c)
			eMean[i] = mkNode(c)
		}
		if w.Predict(eSelf, eMean) == c {
			correct++
		}
	}
	if acc := float64(correct) / evals; acc < 0.9 {
		t.Fatalf("GraphSage accuracy %v < 0.9", acc)
	}
}
