package models

import (
	"math"
	"sync"

	"github.com/llm-db/mlkv-go/internal/nn"
	"github.com/llm-db/mlkv-go/internal/tensor"
	"github.com/llm-db/mlkv-go/internal/util"
)

func logf32(x float32) float32 { return float32(math.Log(float64(x))) }
func expf32(x float32) float32 { return float32(math.Exp(float64(x))) }

// GraphSage is a two-layer GraphSAGE node classifier (Hamilton et al.,
// NeurIPS'17) with mean aggregation:
//
//	z¹_u = relu(W1s·e_u + W1n·mean_{w∈N₂(u)} e_w)
//	z²_v = relu(W2s·z¹_v + W2n·mean_{u∈N₁(v)} z¹_u)
//	logits = Wc·z²_v
//
// Node features e are trainable embeddings fetched from storage; gradients
// flow back to every sampled node.
type GraphSage struct {
	Mu      sync.RWMutex
	Dim     int
	Hidden  int
	Classes int
	W1s     []float32 // Hidden × Dim
	W1n     []float32 // Hidden × Dim
	W2s     []float32 // Hidden × Hidden
	W2n     []float32 // Hidden × Hidden
	Wc      []float32 // Classes × Hidden
}

// NewGraphSage builds the model with uniform initialization.
func NewGraphSage(dim, hidden, classes int, seed uint64) *GraphSage {
	r := util.NewRNG(seed)
	mk := func(rows, cols int) []float32 {
		w := make([]float32, rows*cols)
		scale := float32(2.44948974) / float32(cols)
		for i := range w {
			w[i] = (r.Float32()*2 - 1) * scale
		}
		return w
	}
	return &GraphSage{
		Dim: dim, Hidden: hidden, Classes: classes,
		W1s: mk(hidden, dim), W1n: mk(hidden, dim),
		W2s: mk(hidden, hidden), W2n: mk(hidden, hidden),
		Wc: mk(classes, hidden),
	}
}

// SageWorker holds per-goroutine activations and gradient accumulators for
// a fixed layer-1 fan-out (1 self + fanout neighbors).
type SageWorker struct {
	m      *GraphSage
	fanout int

	pre1 [][]float32 // pre-activation of z¹ per layer-1 node
	z1   [][]float32
	m1   []float32 // mean of neighbor z¹
	pre2 []float32
	z2   []float32
	prb  []float32
	dLg  []float32

	dW1s, dW1n, dW2s, dW2n, dWc []float32
	dSelf                       [][]float32 // grad per layer-1 node's self emb
	dMean                       [][]float32 // grad per layer-1 node's neighborhood mean
	n                           int
}

// NewWorker allocates a worker for the given layer-1 fan-out.
func (g *GraphSage) NewWorker(fanout int) *SageWorker {
	w := &SageWorker{
		m: g, fanout: fanout,
		m1:   make([]float32, g.Hidden),
		pre2: make([]float32, g.Hidden),
		z2:   make([]float32, g.Hidden),
		prb:  make([]float32, g.Classes),
		dLg:  make([]float32, g.Classes),
		dW1s: make([]float32, len(g.W1s)), dW1n: make([]float32, len(g.W1n)),
		dW2s: make([]float32, len(g.W2s)), dW2n: make([]float32, len(g.W2n)),
		dWc: make([]float32, len(g.Wc)),
	}
	for i := 0; i <= fanout; i++ {
		w.pre1 = append(w.pre1, make([]float32, g.Hidden))
		w.z1 = append(w.z1, make([]float32, g.Hidden))
		w.dSelf = append(w.dSelf, make([]float32, g.Dim))
		w.dMean = append(w.dMean, make([]float32, g.Dim))
	}
	return w
}

// Forward computes class logits. eSelf[0] is the target node's embedding,
// eSelf[1..fanout] its sampled neighbors'; eMean[i] is the mean embedding
// of node i's own sampled neighborhood. Slices must have fanout+1 entries.
func (w *SageWorker) Forward(eSelf, eMean [][]float32) []float32 {
	g := w.m
	g.Mu.RLock()
	defer g.Mu.RUnlock()
	tmp := make([]float32, g.Hidden)
	for i := 0; i <= w.fanout; i++ {
		tensor.MatVec(g.W1s, g.Hidden, g.Dim, eSelf[i], w.pre1[i])
		tensor.MatVec(g.W1n, g.Hidden, g.Dim, eMean[i], tmp)
		tensor.Axpy(1, tmp, w.pre1[i])
		copy(w.z1[i], w.pre1[i])
		tensor.ReLU(w.z1[i])
	}
	tensor.Zero(w.m1)
	for i := 1; i <= w.fanout; i++ {
		tensor.Axpy(1/float32(w.fanout), w.z1[i], w.m1)
	}
	tensor.MatVec(g.W2s, g.Hidden, g.Hidden, w.z1[0], w.pre2)
	tensor.MatVec(g.W2n, g.Hidden, g.Hidden, w.m1, tmp)
	tensor.Axpy(1, tmp, w.pre2)
	copy(w.z2, w.pre2)
	tensor.ReLU(w.z2)
	logits := make([]float32, g.Classes)
	tensor.MatVec(g.Wc, g.Classes, g.Hidden, w.z2, logits)
	return logits
}

// Step runs forward, softmax cross-entropy, and backward for one labeled
// node. It returns the loss, predicted class, and gradients w.r.t. each
// layer-1 node's self embedding and neighborhood-mean (worker-owned).
func (w *SageWorker) Step(eSelf, eMean [][]float32, label int) (loss float32, pred int, dSelf, dMean [][]float32) {
	g := w.m
	logits := w.Forward(eSelf, eMean)
	loss = nn.SoftmaxCE(logits, label, w.prb, w.dLg)
	pred = tensor.ArgMax(logits)

	g.Mu.RLock()
	defer g.Mu.RUnlock()
	// Classifier.
	tensor.OuterAcc(w.dWc, g.Classes, g.Hidden, w.dLg, w.z2)
	dz2 := make([]float32, g.Hidden)
	tensor.MatVecT(g.Wc, g.Classes, g.Hidden, w.dLg, dz2)
	tensor.ReLUGrad(w.z2, dz2)
	// Layer 2.
	tensor.OuterAcc(w.dW2s, g.Hidden, g.Hidden, dz2, w.z1[0])
	tensor.OuterAcc(w.dW2n, g.Hidden, g.Hidden, dz2, w.m1)
	dz1self := make([]float32, g.Hidden)
	dm1 := make([]float32, g.Hidden)
	tensor.MatVecT(g.W2s, g.Hidden, g.Hidden, dz2, dz1self)
	tensor.MatVecT(g.W2n, g.Hidden, g.Hidden, dz2, dm1)
	// Layer 1, per node.
	dz1 := make([]float32, g.Hidden)
	for i := 0; i <= w.fanout; i++ {
		if i == 0 {
			copy(dz1, dz1self)
		} else {
			for j := range dz1 {
				dz1[j] = dm1[j] / float32(w.fanout)
			}
		}
		tensor.ReLUGrad(w.z1[i], dz1)
		tensor.OuterAcc(w.dW1s, g.Hidden, g.Dim, dz1, eSelf[i])
		tensor.OuterAcc(w.dW1n, g.Hidden, g.Dim, dz1, eMean[i])
		tensor.MatVecT(g.W1s, g.Hidden, g.Dim, dz1, w.dSelf[i])
		tensor.MatVecT(g.W1n, g.Hidden, g.Dim, dz1, w.dMean[i])
	}
	w.n++
	return loss, pred, w.dSelf, w.dMean
}

// Predict returns the argmax class without recording gradients.
func (w *SageWorker) Predict(eSelf, eMean [][]float32) int {
	return tensor.ArgMax(w.Forward(eSelf, eMean))
}

// Apply folds accumulated gradients into the shared parameters.
func (w *SageWorker) Apply(lr float32) {
	if w.n == 0 {
		return
	}
	g := w.m
	s := -lr / float32(w.n)
	g.Mu.Lock()
	tensor.Axpy(s, w.dW1s, g.W1s)
	tensor.Axpy(s, w.dW1n, g.W1n)
	tensor.Axpy(s, w.dW2s, g.W2s)
	tensor.Axpy(s, w.dW2n, g.W2n)
	tensor.Axpy(s, w.dWc, g.Wc)
	g.Mu.Unlock()
	tensor.Zero(w.dW1s)
	tensor.Zero(w.dW1n)
	tensor.Zero(w.dW2s)
	tensor.Zero(w.dW2n)
	tensor.Zero(w.dWc)
	w.n = 0
}
