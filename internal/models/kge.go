package models

import (
	"github.com/llm-db/mlkv-go/internal/tensor"
	"github.com/llm-db/mlkv-go/internal/util"
)

// KGEKind selects the knowledge-graph-embedding scoring function.
type KGEKind int

const (
	// DistMult scores ⟨h, r, t⟩ = Σ h_i·r_i·t_i (Yang et al., ICLR'15).
	DistMult KGEKind = iota
	// ComplEx scores Re(Σ h_i·r_i·conj(t_i)) over C^{d/2} embeddings stored
	// as [real ‖ imag] (Trouillon et al., ICML'16).
	ComplEx
)

// String names the scoring function for benchmark output.
func (k KGEKind) String() string {
	if k == ComplEx {
		return "ComplEx"
	}
	return "DistMult"
}

// KGE is a knowledge-graph embedding scorer. It has no dense parameters;
// the entire model state is the entity and relation embedding tables.
type KGE struct {
	Kind KGEKind
	Dim  int // storage dimension (ComplEx uses Dim/2 complex pairs)
}

// NewKGE builds a scorer. For ComplEx, dim must be even.
func NewKGE(kind KGEKind, dim int) *KGE {
	if kind == ComplEx && dim%2 != 0 {
		panic("models: ComplEx dimension must be even")
	}
	return &KGE{Kind: kind, Dim: dim}
}

// Score computes the triple score.
func (m *KGE) Score(h, r, t []float32) float32 {
	switch m.Kind {
	case DistMult:
		var s float32
		for i := range h {
			s += h[i] * r[i] * t[i]
		}
		return s
	default: // ComplEx
		k := m.Dim / 2
		hr, hi := h[:k], h[k:]
		rr, ri := r[:k], r[k:]
		tr, ti := t[:k], t[k:]
		var s float32
		for i := 0; i < k; i++ {
			s += (hr[i]*rr[i]-hi[i]*ri[i])*tr[i] + (hr[i]*ri[i]+hi[i]*rr[i])*ti[i]
		}
		return s
	}
}

// Grad accumulates dScore × ∂score/∂{h,r,t} into dh, dr, dt.
func (m *KGE) Grad(h, r, t []float32, dScore float32, dh, dr, dt []float32) {
	switch m.Kind {
	case DistMult:
		for i := range h {
			dh[i] += dScore * r[i] * t[i]
			dr[i] += dScore * h[i] * t[i]
			dt[i] += dScore * h[i] * r[i]
		}
	default: // ComplEx
		k := m.Dim / 2
		hr, hi := h[:k], h[k:]
		rr, ri := r[:k], r[k:]
		tr, ti := t[:k], t[k:]
		for i := 0; i < k; i++ {
			// s_i = (hr·rr − hi·ri)·tr + (hr·ri + hi·rr)·ti
			dh[i] += dScore * (rr[i]*tr[i] + ri[i]*ti[i])
			dh[k+i] += dScore * (-ri[i]*tr[i] + rr[i]*ti[i])
			dr[i] += dScore * (hr[i]*tr[i] + hi[i]*ti[i])
			dr[k+i] += dScore * (-hi[i]*tr[i] + hr[i]*ti[i])
			dt[i] += dScore * (hr[i]*rr[i] - hi[i]*ri[i])
			dt[k+i] += dScore * (hr[i]*ri[i] + hi[i]*rr[i])
		}
	}
}

// TripleLoss computes the logistic loss for one positive triple against
// negTails corrupted tails, accumulating gradients into the provided
// buffers. negEmb[i] is the i-th negative tail embedding; dNeg[i] receives
// its gradient. Returns the loss.
func (m *KGE) TripleLoss(h, r, t []float32, negEmb [][]float32, dh, dr, dt []float32, dNeg [][]float32) float32 {
	sPos := m.Score(h, r, t)
	// L = softplus(−s⁺) + Σ softplus(s⁻);  ∂L/∂s⁺ = −σ(−s⁺), ∂L/∂s⁻ = σ(s⁻).
	loss := softplus(-sPos)
	m.Grad(h, r, t, -tensor.Sigmoid(-sPos), dh, dr, dt)
	for i, neg := range negEmb {
		sNeg := m.Score(h, r, neg)
		loss += softplus(sNeg)
		m.Grad(h, r, neg, tensor.Sigmoid(sNeg), dh, dr, dNeg[i])
	}
	return loss
}

// HitsAtK evaluates link prediction: the rank of the true tail among the
// candidates (true tail first, then corrupted tails); returns 1 if the true
// tail ranks in the top k.
func (m *KGE) HitsAtK(h, r, t []float32, negs [][]float32, k int) int {
	sTrue := m.Score(h, r, t)
	rank := 1
	for _, neg := range negs {
		if m.Score(h, r, neg) > sTrue {
			rank++
		}
	}
	if rank <= k {
		return 1
	}
	return 0
}

func softplus(x float32) float32 {
	// log(1 + e^x), stable for large |x|.
	if x > 15 {
		return x
	}
	if x < -15 {
		return 0
	}
	return logf32(1 + expf32(x))
}

// KGEInit returns an embedding initializer appropriate for KGE training.
func KGEInit(dim int, seed uint64) func(key uint64, dst []float32) {
	scale := float32(0.5) / float32(dim)
	return func(key uint64, dst []float32) {
		r := util.NewRNG(util.Mix64(key) ^ seed)
		for i := range dst {
			dst[i] = (r.Float32()*2 - 1) * scale * float32(dim)
		}
	}
}
