package models

import (
	"sync"

	"github.com/llm-db/mlkv-go/internal/nn"
	"github.com/llm-db/mlkv-go/internal/tensor"
	"github.com/llm-db/mlkv-go/internal/util"
)

// GAT is a two-layer, single-head graph attention network (Veličković et
// al., ICLR'18) for node classification. Each layer projects inputs with W
// and aggregates a neighborhood (self included) with attention weights
//
//	s_x = leakyrelu(aS·q_self + aN·q_x),  α = softmax(s),  out = relu(Σ α q)
//
// using the decomposed attention form of the original paper.
type GAT struct {
	Mu      sync.RWMutex
	Dim     int
	Hidden  int
	Classes int
	W1      []float32 // Hidden × Dim
	A1s     []float32 // Hidden
	A1n     []float32
	W2      []float32 // Hidden × Hidden
	A2s     []float32
	A2n     []float32
	Wc      []float32 // Classes × Hidden
}

const leakySlope = 0.2

// NewGAT builds the model.
func NewGAT(dim, hidden, classes int, seed uint64) *GAT {
	r := util.NewRNG(seed)
	mk := func(n, fan int) []float32 {
		w := make([]float32, n)
		scale := float32(2.44948974) / float32(fan)
		for i := range w {
			w[i] = (r.Float32()*2 - 1) * scale
		}
		return w
	}
	return &GAT{
		Dim: dim, Hidden: hidden, Classes: classes,
		W1: mk(hidden*dim, dim), A1s: mk(hidden, hidden), A1n: mk(hidden, hidden),
		W2: mk(hidden*hidden, hidden), A2s: mk(hidden, hidden), A2n: mk(hidden, hidden),
		Wc: mk(classes*hidden, hidden),
	}
}

// attnState captures one attention aggregation for backprop.
type attnState struct {
	q     [][]float32 // projected inputs, q[0] = self
	score []float32   // pre-softmax attention logits
	alpha []float32
	out   []float32 // post-relu aggregate
	pre   []float32 // pre-relu aggregate
}

func newAttnState(n, hidden int) *attnState {
	st := &attnState{
		score: make([]float32, n),
		alpha: make([]float32, n),
		out:   make([]float32, hidden),
		pre:   make([]float32, hidden),
	}
	for i := 0; i < n; i++ {
		st.q = append(st.q, make([]float32, hidden))
	}
	return st
}

// attnForward computes one attention aggregation. w (rows×cols) projects
// each input; aS/aN are the decomposed attention vectors.
func attnForward(st *attnState, w []float32, rows, cols int, aS, aN []float32, inputs [][]float32) {
	n := len(inputs)
	for i := 0; i < n; i++ {
		tensor.MatVec(w, rows, cols, inputs[i], st.q[i])
	}
	selfTerm := tensor.Dot(aS, st.q[0])
	for i := 0; i < n; i++ {
		s := selfTerm + tensor.Dot(aN, st.q[i])
		if s < 0 {
			s *= leakySlope
		}
		st.score[i] = s
	}
	tensor.Softmax(st.score[:n], st.alpha[:n])
	tensor.Zero(st.pre)
	for i := 0; i < n; i++ {
		tensor.Axpy(st.alpha[i], st.q[i], st.pre)
	}
	copy(st.out, st.pre)
	tensor.ReLU(st.out)
}

// attnBackward backpropagates dOut through the aggregation, accumulating
// dW/dAS/dAN and writing input gradients into dInputs.
func attnBackward(st *attnState, w []float32, rows, cols int, aS, aN []float32,
	inputs [][]float32, dOut []float32, dW, dAS, dAN []float32, dInputs [][]float32) {
	n := len(inputs)
	dPre := append([]float32(nil), dOut...)
	tensor.ReLUGrad(st.out, dPre)

	// pre = Σ α_i q_i
	dAlpha := make([]float32, n)
	dQ := make([][]float32, n)
	for i := 0; i < n; i++ {
		dAlpha[i] = tensor.Dot(dPre, st.q[i])
		dQ[i] = make([]float32, rows)
		tensor.Axpy(st.alpha[i], dPre, dQ[i])
	}
	// Softmax backward: ds_i = α_i (dα_i − Σ_j α_j dα_j).
	var dot float32
	for j := 0; j < n; j++ {
		dot += st.alpha[j] * dAlpha[j]
	}
	dScore := make([]float32, n)
	for i := 0; i < n; i++ {
		dScore[i] = st.alpha[i] * (dAlpha[i] - dot)
		if st.score[i] < 0 {
			dScore[i] *= leakySlope
		}
	}
	// score_i = aS·q_0 + aN·q_i (pre-leaky).
	var dSelfScore float32
	for i := 0; i < n; i++ {
		dSelfScore += dScore[i]
		tensor.Axpy(dScore[i], st.q[i], dAN)
		tensor.Axpy(dScore[i], aN, dQ[i])
	}
	tensor.Axpy(dSelfScore, st.q[0], dAS)
	tensor.Axpy(dSelfScore, aS, dQ[0])
	// q_i = W·x_i.
	for i := 0; i < n; i++ {
		tensor.OuterAcc(dW, rows, cols, dQ[i], inputs[i])
		tensor.MatVecT(w, rows, cols, dQ[i], dInputs[i])
	}
}

// GATWorker holds per-goroutine state. Layer-1 aggregates each of the
// fanout+1 layer-1 nodes over its own fanout2+1 inputs (self + sampled
// neighborhood); layer 2 aggregates the fanout+1 z¹ vectors.
type GATWorker struct {
	m       *GAT
	fanout  int
	fanout2 int

	st1 []*attnState
	st2 *attnState
	z1  [][]float32
	prb []float32
	dLg []float32

	dW1, dA1s, dA1n []float32
	dW2, dA2s, dA2n []float32
	dWc             []float32
	dIn             [][][]float32 // per layer-1 node, per input, Dim grads
	dz1             [][]float32
	n               int
}

// NewWorker allocates a worker for fanout layer-1 neighbors, each with
// fanout2 layer-2 neighbors.
func (g *GAT) NewWorker(fanout, fanout2 int) *GATWorker {
	w := &GATWorker{
		m: g, fanout: fanout, fanout2: fanout2,
		st2: newAttnState(fanout+1, g.Hidden),
		prb: make([]float32, g.Classes),
		dLg: make([]float32, g.Classes),
		dW1: make([]float32, len(g.W1)), dA1s: make([]float32, len(g.A1s)), dA1n: make([]float32, len(g.A1n)),
		dW2: make([]float32, len(g.W2)), dA2s: make([]float32, len(g.A2s)), dA2n: make([]float32, len(g.A2n)),
		dWc: make([]float32, len(g.Wc)),
	}
	for i := 0; i <= fanout; i++ {
		w.st1 = append(w.st1, newAttnState(fanout2+1, g.Hidden))
		w.z1 = append(w.z1, make([]float32, g.Hidden))
		w.dz1 = append(w.dz1, make([]float32, g.Hidden))
		grads := make([][]float32, fanout2+1)
		for j := range grads {
			grads[j] = make([]float32, g.Dim)
		}
		w.dIn = append(w.dIn, grads)
	}
	return w
}

// Forward computes logits. inputs[i] holds the fanout2+1 embeddings feeding
// layer-1 node i (inputs[i][0] is that node's own embedding); node 0 is the
// classification target.
func (w *GATWorker) Forward(inputs [][][]float32) []float32 {
	g := w.m
	g.Mu.RLock()
	defer g.Mu.RUnlock()
	for i := 0; i <= w.fanout; i++ {
		attnForward(w.st1[i], g.W1, g.Hidden, g.Dim, g.A1s, g.A1n, inputs[i])
		copy(w.z1[i], w.st1[i].out)
	}
	attnForward(w.st2, g.W2, g.Hidden, g.Hidden, g.A2s, g.A2n, w.z1)
	logits := make([]float32, g.Classes)
	tensor.MatVec(g.Wc, g.Classes, g.Hidden, w.st2.out, logits)
	return logits
}

// Step runs forward + softmax CE + backward; returns loss, prediction, and
// the gradient for every input embedding (worker-owned, shaped like inputs).
func (w *GATWorker) Step(inputs [][][]float32, label int) (loss float32, pred int, dIn [][][]float32) {
	g := w.m
	logits := w.Forward(inputs)
	loss = nn.SoftmaxCE(logits, label, w.prb, w.dLg)
	pred = tensor.ArgMax(logits)

	g.Mu.RLock()
	defer g.Mu.RUnlock()
	tensor.OuterAcc(w.dWc, g.Classes, g.Hidden, w.dLg, w.st2.out)
	dz2 := make([]float32, g.Hidden)
	tensor.MatVecT(g.Wc, g.Classes, g.Hidden, w.dLg, dz2)
	for i := range w.dz1 {
		tensor.Zero(w.dz1[i])
	}
	attnBackward(w.st2, g.W2, g.Hidden, g.Hidden, g.A2s, g.A2n, w.z1, dz2,
		w.dW2, w.dA2s, w.dA2n, w.dz1)
	for i := 0; i <= w.fanout; i++ {
		for j := range w.dIn[i] {
			tensor.Zero(w.dIn[i][j])
		}
		attnBackward(w.st1[i], g.W1, g.Hidden, g.Dim, g.A1s, g.A1n, inputs[i],
			w.dz1[i], w.dW1, w.dA1s, w.dA1n, w.dIn[i])
	}
	w.n++
	return loss, pred, w.dIn
}

// Predict returns the argmax class.
func (w *GATWorker) Predict(inputs [][][]float32) int {
	return tensor.ArgMax(w.Forward(inputs))
}

// Apply folds accumulated gradients into the shared parameters.
func (w *GATWorker) Apply(lr float32) {
	if w.n == 0 {
		return
	}
	g := w.m
	s := -lr / float32(w.n)
	g.Mu.Lock()
	tensor.Axpy(s, w.dW1, g.W1)
	tensor.Axpy(s, w.dA1s, g.A1s)
	tensor.Axpy(s, w.dA1n, g.A1n)
	tensor.Axpy(s, w.dW2, g.W2)
	tensor.Axpy(s, w.dA2s, g.A2s)
	tensor.Axpy(s, w.dA2n, g.A2n)
	tensor.Axpy(s, w.dWc, g.Wc)
	g.Mu.Unlock()
	for _, b := range [][]float32{w.dW1, w.dA1s, w.dA1n, w.dW2, w.dA2s, w.dA2n, w.dWc} {
		tensor.Zero(b)
	}
	w.n = 0
}
