package tensor

import (
	"math"
	"testing"
)

func TestF32CodecRoundTrip(t *testing.T) {
	src := []float32{0, 1, -1, 0.5, -0.25, math.MaxFloat32, math.SmallestNonzeroFloat32,
		float32(math.Inf(1)), float32(math.Inf(-1)), 3.14159, -2.71828}
	buf := make([]byte, 4*len(src))
	F32sToBytes(src, buf)
	got := make([]float32, len(src))
	BytesToF32s(buf, got)
	for i := range src {
		if math.Float32bits(got[i]) != math.Float32bits(src[i]) {
			t.Fatalf("index %d: %x -> %x", i, math.Float32bits(src[i]), math.Float32bits(got[i]))
		}
	}
}

func TestF32CodecNaN(t *testing.T) {
	src := []float32{float32(math.NaN())}
	buf := make([]byte, 4)
	F32sToBytes(src, buf)
	got := make([]float32, 1)
	BytesToF32s(buf, got)
	if !math.IsNaN(float64(got[0])) {
		t.Fatalf("NaN round-tripped to %v", got[0])
	}
}

func TestF32CodecLittleEndian(t *testing.T) {
	buf := make([]byte, 4)
	F32sToBytes([]float32{1.0}, buf) // 0x3f800000
	want := [4]byte{0x00, 0x00, 0x80, 0x3f}
	if [4]byte(buf) != want {
		t.Fatalf("encoding of 1.0 = % x, want % x", buf, want[:])
	}
}

func BenchmarkF32sToBytes(b *testing.B) {
	src := make([]float32, 64) // a typical embedding vector
	for i := range src {
		src[i] = float32(i) * 0.125
	}
	dst := make([]byte, 4*len(src))
	b.SetBytes(int64(len(dst)))
	for i := 0; i < b.N; i++ {
		F32sToBytes(src, dst)
	}
}

func BenchmarkBytesToF32s(b *testing.B) {
	src := make([]byte, 4*64)
	for i := range src {
		src[i] = byte(i)
	}
	dst := make([]float32, 64)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		BytesToF32s(src, dst)
	}
}
