// Package tensor provides the small float32 vector/matrix kernels the
// neural-network substrate is built from. Everything operates on flat
// []float32 buffers; matrices are row-major.
package tensor

import "math"

// Dot returns the inner product of a and b.
func Dot(a, b []float32) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha*x.
func Axpy(alpha float32, x, y []float32) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale computes x *= alpha.
func Scale(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// MatVec computes y = W·x for W (rows×cols, row-major).
func MatVec(w []float32, rows, cols int, x, y []float32) {
	for r := 0; r < rows; r++ {
		y[r] = Dot(w[r*cols:(r+1)*cols], x)
	}
}

// MatVecT computes y = Wᵀ·x for W (rows×cols); x has rows elements, y cols.
func MatVecT(w []float32, rows, cols int, x, y []float32) {
	for c := 0; c < cols; c++ {
		y[c] = 0
	}
	for r := 0; r < rows; r++ {
		Axpy(x[r], w[r*cols:(r+1)*cols], y)
	}
}

// OuterAcc accumulates dW += dy ⊗ x into W-shaped dw (rows×cols).
func OuterAcc(dw []float32, rows, cols int, dy, x []float32) {
	for r := 0; r < rows; r++ {
		Axpy(dy[r], x, dw[r*cols:(r+1)*cols])
	}
}

// ReLU computes y = max(x, 0) in place and records the mask in x itself.
func ReLU(x []float32) {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
}

// ReLUGrad zeroes dy where the forward activation was clamped.
func ReLUGrad(act, dy []float32) {
	for i := range dy {
		if act[i] <= 0 {
			dy[i] = 0
		}
	}
}

// Sigmoid returns 1/(1+e^-x) with overflow guards.
func Sigmoid(x float32) float32 {
	if x >= 0 {
		z := float32(math.Exp(float64(-x)))
		return 1 / (1 + z)
	}
	z := float32(math.Exp(float64(x)))
	return z / (1 + z)
}

// Softmax writes the softmax of logits into probs.
func Softmax(logits, probs []float32) {
	maxv := logits[0]
	for _, v := range logits[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float32
	for i, v := range logits {
		e := float32(math.Exp(float64(v - maxv)))
		probs[i] = e
		sum += e
	}
	for i := range probs {
		probs[i] /= sum
	}
}

// ArgMax returns the index of the largest element.
func ArgMax(x []float32) int {
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}

// Zero clears x.
func Zero(x []float32) {
	for i := range x {
		x[i] = 0
	}
}

// Norm2 returns the Euclidean norm.
func Norm2(x []float32) float32 {
	var s float32
	for _, v := range x {
		s += v * v
	}
	return float32(math.Sqrt(float64(s)))
}

// ClipInPlace clamps every element to [-c, c].
func ClipInPlace(x []float32, c float32) {
	for i, v := range x {
		if v > c {
			x[i] = c
		} else if v < -c {
			x[i] = -c
		}
	}
}
