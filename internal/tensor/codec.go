package tensor

import (
	"encoding/binary"
	"math"
)

// The storage layers all persist embeddings as little-endian IEEE-754
// float32 words. These two helpers are the one codec every layer shares
// (core tables, the train KV/remote backends, benchmarks); keeping a
// single definition stops the byte order from drifting between the
// in-process and on-the-wire representations.

// BytesToF32s decodes len(dst) little-endian float32 words from src into
// dst. src must hold at least 4*len(dst) bytes.
func BytesToF32s(src []byte, dst []float32) {
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[i*4:]))
	}
}

// F32sToBytes encodes src as little-endian float32 words into dst, which
// must hold at least 4*len(src) bytes.
func F32sToBytes(src []float32, dst []byte) {
	for i, v := range src {
		binary.LittleEndian.PutUint32(dst[i*4:], math.Float32bits(v))
	}
}
