package data

import (
	"github.com/llm-db/mlkv-go/internal/util"
)

// GraphConfig parameterizes a synthetic node-classification graph
// (Papers100M-like, scaled): a planted-partition community graph with
// skewed degrees.
type GraphConfig struct {
	Nodes     uint64
	Classes   int
	AvgDegree int
	Homophily float64 // probability that an edge stays inside the community
	Zipf      float64 // neighbor-popularity skew
	Seed      uint64
}

// GraphGen serves neighbor samples and labels without materializing the
// full edge list: neighborhoods are generated deterministically per node,
// which keeps billion-node configurations addressable (the eBay cases).
type GraphGen struct {
	cfg GraphConfig
}

// NewGraphGen builds a generator.
func NewGraphGen(cfg GraphConfig) *GraphGen {
	if cfg.Nodes == 0 {
		cfg.Nodes = 100000
	}
	if cfg.Classes == 0 {
		cfg.Classes = 8
	}
	if cfg.AvgDegree == 0 {
		cfg.AvgDegree = 12
	}
	if cfg.Homophily == 0 {
		cfg.Homophily = 0.85
	}
	if cfg.Zipf == 0 {
		cfg.Zipf = 0.7
	}
	return &GraphGen{cfg: cfg}
}

// Config returns the effective configuration.
func (g *GraphGen) Config() GraphConfig { return g.cfg }

// Label returns the planted community of node v.
func (g *GraphGen) Label(v uint64) int {
	return int(util.Mix64(v^g.cfg.Seed) % uint64(g.cfg.Classes))
}

// SampleNeighbors returns n neighbors of v, deterministic in (v, salt).
// With probability Homophily a neighbor shares v's community; otherwise it
// is uniform. Popular nodes (low scrambled rank) appear more often,
// approximating a power-law degree distribution.
func (g *GraphGen) SampleNeighbors(v uint64, n int, salt uint64) []uint64 {
	r := util.NewRNG(util.Mix64(v) ^ g.cfg.Seed ^ salt)
	z := util.NewZipf(r.Split(), g.cfg.Nodes, g.cfg.Zipf)
	out := make([]uint64, n)
	myClass := g.Label(v)
	for i := range out {
		inClass := r.Float64() < g.cfg.Homophily
		for {
			// Zipf rank scrambled into node-ID space.
			u := util.HashKey(z.Next()) % g.cfg.Nodes
			if u == v {
				continue
			}
			if inClass && g.Label(u) != myClass {
				continue // this edge is homophilous: resample until in-class
			}
			out[i] = u
			break
		}
	}
	return out
}

// TrainNode draws a node for training (uniform).
func (g *GraphGen) TrainNode(r *util.RNG) uint64 {
	return r.Uint64n(g.cfg.Nodes)
}

// BipartiteConfig parameterizes an eBay-Trisk-like bipartite risk graph:
// transactions on one side, entities (buyers, instruments) on the other.
type BipartiteConfig struct {
	Transactions uint64
	Entities     uint64
	EntityPerTxn int
	FraudRate    float64
	Zipf         float64
	Seed         uint64
}

// BipartiteGen generates transaction nodes connected to Zipf-popular
// entities; a transaction's fraud label correlates with the planted
// riskiness of the entities it touches, so a GNN over the bipartite graph
// can learn to detect it (the paper's eBay-Trisk case study).
type BipartiteGen struct {
	cfg BipartiteConfig
	rng *util.RNG
	pop *util.Zipf
}

// NewBipartiteGen builds the generator.
func NewBipartiteGen(cfg BipartiteConfig) *BipartiteGen {
	if cfg.Transactions == 0 {
		cfg.Transactions = 1 << 20
	}
	if cfg.Entities == 0 {
		cfg.Entities = 1 << 18
	}
	if cfg.EntityPerTxn == 0 {
		cfg.EntityPerTxn = 4
	}
	if cfg.FraudRate == 0 {
		cfg.FraudRate = 0.1
	}
	if cfg.Zipf == 0 {
		cfg.Zipf = 0.9
	}
	g := &BipartiteGen{cfg: cfg, rng: util.NewRNG(cfg.Seed ^ 0xeBa1)}
	g.pop = util.NewZipf(g.rng.Split(), cfg.Entities, cfg.Zipf)
	return g
}

// Config returns the effective configuration.
func (g *BipartiteGen) Config() BipartiteConfig { return g.cfg }

// NumNodes returns the total node count (transactions + entities).
// Entity node IDs follow transaction IDs.
func (g *BipartiteGen) NumNodes() uint64 { return g.cfg.Transactions + g.cfg.Entities }

// EntityNode maps an entity index to its global node ID.
func (g *BipartiteGen) EntityNode(e uint64) uint64 { return g.cfg.Transactions + e }

// riskOf is the planted riskiness of an entity in [0, 1).
func (g *BipartiteGen) riskOf(e uint64) float64 {
	return float64(util.Mix64(e^g.cfg.Seed)&0xffff) / 65536
}

// TxnSample is one transaction with its entity neighborhood and label.
type TxnSample struct {
	Txn      uint64
	Entities []uint64 // global node IDs
	Label    int      // 1 = fraudulent
}

// Next draws one transaction.
func (g *BipartiteGen) Next() TxnSample {
	s := TxnSample{
		Txn:      g.rng.Uint64n(g.cfg.Transactions),
		Entities: make([]uint64, g.cfg.EntityPerTxn),
	}
	risk := 0.0
	for i := range s.Entities {
		e := util.HashKey(g.pop.Next()) % g.cfg.Entities
		s.Entities[i] = g.EntityNode(e)
		risk += g.riskOf(e)
	}
	risk /= float64(g.cfg.EntityPerTxn)
	// The riskiest tail of transactions is labeled fraudulent, with noise.
	threshold := 1 - g.cfg.FraudRate
	score := risk + g.rng.NormFloat64()*0.05
	if score > threshold {
		s.Label = 1
	}
	return s
}
