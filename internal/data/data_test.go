package data

import (
	"math"
	"testing"

	"github.com/llm-db/mlkv-go/internal/util"
)

func TestCTRGenShapes(t *testing.T) {
	g := NewCTRGen(CTRConfig{Fields: 5, DenseDim: 3, FieldCard: 100, Seed: 1})
	s := g.Next()
	if len(s.Dense) != 3 || len(s.Keys) != 5 {
		t.Fatalf("sample shape: %d dense, %d keys", len(s.Dense), len(s.Keys))
	}
	for f, k := range s.Keys {
		if k < uint64(f)*100 || k >= uint64(f+1)*100 {
			t.Fatalf("field %d key %d outside its range", f, k)
		}
	}
}

func TestCTRLabelsCorrelateWithLatentWeights(t *testing.T) {
	g := NewCTRGen(CTRConfig{Fields: 4, DenseDim: 2, FieldCard: 1000, Seed: 2, NoiseStd: 0.1})
	// Empirical check: samples whose total latent weight is high must be
	// positive more often than samples where it is low.
	var hiPos, hiTot, loPos, loTot float64
	for i := 0; i < 20000; i++ {
		s := g.Next()
		w := 0.0
		for _, k := range s.Keys {
			w += g.latentWeight(k)
		}
		if w > 1 {
			hiTot++
			if s.Label == 1 {
				hiPos++
			}
		} else if w < -1 {
			loTot++
			if s.Label == 1 {
				loPos++
			}
		}
	}
	if hiTot < 100 || loTot < 100 {
		t.Fatalf("degenerate split: %v hi, %v lo", hiTot, loTot)
	}
	if hiPos/hiTot < loPos/loTot+0.2 {
		t.Fatalf("labels uncorrelated with planted weights: hi %.3f lo %.3f", hiPos/hiTot, loPos/loTot)
	}
}

func TestCTRZipfSkewsKeys(t *testing.T) {
	g := NewCTRGen(CTRConfig{Fields: 1, FieldCard: 10000, Zipf: 0.99, Seed: 3})
	counts := make(map[uint64]int)
	for i := 0; i < 20000; i++ {
		counts[g.Next().Keys[0]]++
	}
	if len(counts) > 6000 {
		t.Fatalf("no skew: %d distinct keys in 20000 draws", len(counts))
	}
}

func TestKGGenStructure(t *testing.T) {
	g := NewKGGen(KGConfig{Entities: 5000, Relations: 8, Clusters: 16, Seed: 4})
	for i := 0; i < 1000; i++ {
		tr := g.Next()
		if !g.IsTrue(tr) {
			t.Fatalf("generated triple violates planted structure: %+v", tr)
		}
		if tr.H >= 5000 || tr.T >= 5000 || tr.R >= 8 {
			t.Fatalf("triple out of range: %+v", tr)
		}
		neg := g.NegativeTail(tr)
		if g.IsTrue(Triple{H: tr.H, R: tr.R, T: neg}) {
			t.Fatalf("negative tail %d is actually positive", neg)
		}
	}
}

func TestKGDeterministicClusters(t *testing.T) {
	g1 := NewKGGen(KGConfig{Entities: 1000, Seed: 5})
	g2 := NewKGGen(KGConfig{Entities: 1000, Seed: 5})
	for e := uint64(0); e < 100; e++ {
		if g1.clusterOf(e) != g2.clusterOf(e) {
			t.Fatal("cluster assignment not deterministic")
		}
	}
}

func TestGraphGenLabelsBalanced(t *testing.T) {
	g := NewGraphGen(GraphConfig{Nodes: 10000, Classes: 4, Seed: 6})
	counts := make([]int, 4)
	for v := uint64(0); v < 10000; v++ {
		counts[g.Label(v)]++
	}
	for c, n := range counts {
		if math.Abs(float64(n)-2500) > 300 {
			t.Fatalf("class %d has %d nodes, want ~2500", c, n)
		}
	}
}

func TestGraphNeighborsHomophilous(t *testing.T) {
	g := NewGraphGen(GraphConfig{Nodes: 10000, Classes: 4, Homophily: 0.9, Seed: 7})
	same, total := 0, 0
	for v := uint64(0); v < 500; v++ {
		for _, u := range g.SampleNeighbors(v, 8, 0) {
			if u == v {
				t.Fatal("self-loop sampled")
			}
			total++
			if g.Label(u) == g.Label(v) {
				same++
			}
		}
	}
	if frac := float64(same) / float64(total); frac < 0.8 {
		t.Fatalf("homophily %.3f, want >= 0.8", frac)
	}
}

func TestGraphNeighborsDeterministicPerSalt(t *testing.T) {
	g := NewGraphGen(GraphConfig{Nodes: 1000, Seed: 8})
	a := g.SampleNeighbors(5, 4, 1)
	b := g.SampleNeighbors(5, 4, 1)
	c := g.SampleNeighbors(5, 4, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same salt must give same neighbors")
		}
	}
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different salts should give different samples")
	}
}

func TestBipartiteGen(t *testing.T) {
	g := NewBipartiteGen(BipartiteConfig{
		Transactions: 10000, Entities: 1000, EntityPerTxn: 3, FraudRate: 0.2, Seed: 9,
	})
	frauds := 0
	const n = 20000
	riskFraud, riskClean := 0.0, 0.0
	nf, nc := 0.0, 0.0
	for i := 0; i < n; i++ {
		s := g.Next()
		if len(s.Entities) != 3 {
			t.Fatal("entity count")
		}
		risk := 0.0
		for _, e := range s.Entities {
			if e < 10000 || e >= 11000 {
				t.Fatalf("entity node %d out of range", e)
			}
			risk += g.riskOf(e - 10000)
		}
		if s.Label == 1 {
			frauds++
			riskFraud += risk
			nf++
		} else {
			riskClean += risk
			nc++
		}
	}
	rate := float64(frauds) / n
	if rate < 0.02 || rate > 0.6 {
		t.Fatalf("fraud rate %.3f implausible", rate)
	}
	if riskFraud/nf <= riskClean/nc {
		t.Fatal("fraud labels uncorrelated with entity risk")
	}
}

func TestGeneratorsDeterministicAcrossRuns(t *testing.T) {
	a := NewCTRGen(CTRConfig{Seed: 42})
	b := NewCTRGen(CTRConfig{Seed: 42})
	for i := 0; i < 100; i++ {
		sa, sb := a.Next(), b.Next()
		if sa.Label != sb.Label || sa.Keys[0] != sb.Keys[0] {
			t.Fatal("CTR generator not deterministic")
		}
	}
	_ = util.Mix64(0)
}
