// Package data generates the synthetic workloads standing in for the
// paper's datasets (Table II): Criteo-like click logs for CTR, knowledge
// graphs for link prediction, power-law community graphs for node
// classification, and eBay-like risk-detection graphs. Every generator
// plants a recoverable ground truth so that convergence curves (AUC,
// Hits@k, accuracy vs time) are meaningful, and draws categorical
// popularity from Zipf distributions so that cache behaviour matches the
// skew of the real datasets.
package data

import (
	"github.com/llm-db/mlkv-go/internal/util"
)

// CTRConfig parameterizes a Criteo-like click-log generator.
type CTRConfig struct {
	Fields    int     // categorical fields (Criteo: 26)
	DenseDim  int     // dense features (Criteo: 13)
	FieldCard uint64  // cardinality per categorical field
	Zipf      float64 // popularity skew of feature values (0 disables)
	NoiseStd  float64 // label noise
	// Seed fixes the planted ground-truth model. Generators with the same
	// Seed agree on labels regardless of Stream.
	Seed uint64
	// Stream seeds the sample stream; give each worker its own so they
	// draw different impressions of the same ground truth.
	Stream uint64
}

// CTRSample is one labeled impression.
type CTRSample struct {
	Dense []float32
	Keys  []uint64 // one global embedding key per field
	Label float32
}

// CTRGen streams synthetic impressions. The planted model draws a latent
// weight per (field, value) and per dense feature; the label is Bernoulli
// of the sigmoid of their sum. A learner with per-value embeddings can
// recover it, so AUC climbs above 0.5 and saturates.
type CTRGen struct {
	cfg    CTRConfig
	rng    *util.RNG
	fields []*util.Zipf
}

// NewCTRGen builds a generator.
func NewCTRGen(cfg CTRConfig) *CTRGen {
	if cfg.Fields == 0 {
		cfg.Fields = 8
	}
	if cfg.DenseDim == 0 {
		cfg.DenseDim = 4
	}
	if cfg.FieldCard == 0 {
		cfg.FieldCard = 10000
	}
	if cfg.Zipf == 0 {
		cfg.Zipf = 0.9
	}
	if cfg.NoiseStd == 0 {
		cfg.NoiseStd = 0.5
	}
	g := &CTRGen{cfg: cfg, rng: util.NewRNG(cfg.Seed ^ util.Mix64(cfg.Stream) ^ 0xc72)}
	for f := 0; f < cfg.Fields; f++ {
		g.fields = append(g.fields, util.NewZipf(g.rng.Split(), cfg.FieldCard, cfg.Zipf))
	}
	return g
}

// Config returns the generator's effective configuration.
func (g *CTRGen) Config() CTRConfig { return g.cfg }

// NumKeys returns the size of the embedding key space.
func (g *CTRGen) NumKeys() uint64 { return uint64(g.cfg.Fields) * g.cfg.FieldCard }

// Key maps (field, value) to a global embedding key.
func (g *CTRGen) Key(field int, value uint64) uint64 {
	return uint64(field)*g.cfg.FieldCard + value
}

// latentWeight is the planted ground-truth weight of a feature value,
// derived deterministically from the key so the generator is stateless.
func (g *CTRGen) latentWeight(key uint64) float64 {
	u := util.Mix64(key ^ g.cfg.Seed)
	// Roughly N(0, 1) via sum of uniforms.
	a := float64(u&0xffffffff) / (1 << 32)
	b := float64(u>>32) / (1 << 32)
	return (a + b - 1) * 3.46 // var 1/6 each → scale to unit variance
}

// Next draws one sample.
func (g *CTRGen) Next() CTRSample {
	s := CTRSample{
		Dense: make([]float32, g.cfg.DenseDim),
		Keys:  make([]uint64, g.cfg.Fields),
	}
	logit := 0.0
	for f := 0; f < g.cfg.Fields; f++ {
		v := g.fields[f].Next()
		k := g.Key(f, v)
		s.Keys[f] = k
		logit += g.latentWeight(k)
	}
	// Dense features contribute through fixed planted weights.
	for i := range s.Dense {
		x := g.rng.Float32()*2 - 1
		s.Dense[i] = x
		w := g.latentWeight(uint64(i) ^ 0xdede)
		logit += float64(x) * w
	}
	logit = logit/2 + g.rng.NormFloat64()*g.cfg.NoiseStd
	if g.rng.Float64() < util.Sigmoid(logit) {
		s.Label = 1
	}
	return s
}

// Batch draws n samples.
func (g *CTRGen) Batch(n int) []CTRSample {
	out := make([]CTRSample, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
