package data

import (
	"github.com/llm-db/mlkv-go/internal/util"
)

// KGConfig parameterizes a synthetic knowledge graph (Freebase/WikiKG-like).
type KGConfig struct {
	Entities  uint64
	Relations int
	Clusters  int     // planted structure: relations map cluster→cluster
	Zipf      float64 // head-entity popularity skew
	// Seed fixes the planted cluster structure; Stream seeds the sample
	// stream (one per worker).
	Seed   uint64
	Stream uint64
}

// Triple is one (head, relation, tail) fact.
type Triple struct {
	H uint64
	R int
	T uint64
}

// KGGen streams triples from a planted cluster structure: each entity
// belongs to a cluster; relation r deterministically maps cluster c to
// cluster σ_r(c); true triples connect a head to a uniform tail of the
// mapped cluster. A link-prediction model can learn the structure, so
// Hits@k climbs with training.
type KGGen struct {
	cfg KGConfig
	rng *util.RNG
	pop *util.Zipf
}

// NewKGGen builds a generator.
func NewKGGen(cfg KGConfig) *KGGen {
	if cfg.Entities == 0 {
		cfg.Entities = 100000
	}
	if cfg.Relations == 0 {
		cfg.Relations = 16
	}
	if cfg.Clusters == 0 {
		cfg.Clusters = 32
	}
	if cfg.Zipf == 0 {
		cfg.Zipf = 0.8
	}
	g := &KGGen{cfg: cfg, rng: util.NewRNG(cfg.Seed ^ util.Mix64(cfg.Stream) ^ 0x4b39)}
	g.pop = util.NewZipf(g.rng.Split(), cfg.Entities, cfg.Zipf)
	return g
}

// Config returns the effective configuration.
func (g *KGGen) Config() KGConfig { return g.cfg }

// clusterOf assigns entities to clusters deterministically.
func (g *KGGen) clusterOf(e uint64) int {
	return int(util.Mix64(e^g.cfg.Seed) % uint64(g.cfg.Clusters))
}

// mapped returns σ_r(c), the target cluster of relation r from cluster c.
func (g *KGGen) mapped(r, c int) int {
	return int(util.Mix64(uint64(r)<<32|uint64(c)^g.cfg.Seed) % uint64(g.cfg.Clusters))
}

// Next draws one true triple.
func (g *KGGen) Next() Triple {
	h := g.pop.Next()
	r := int(g.rng.Uint64n(uint64(g.cfg.Relations)))
	target := g.mapped(r, g.clusterOf(h))
	// Rejection-sample a tail from the target cluster.
	var t uint64
	for {
		t = g.rng.Uint64n(g.cfg.Entities)
		if g.clusterOf(t) == target {
			break
		}
	}
	return Triple{H: h, R: r, T: t}
}

// IsTrue reports whether (h, r, t) respects the planted structure (used to
// sanity-check negative sampling).
func (g *KGGen) IsTrue(tr Triple) bool {
	return g.clusterOf(tr.T) == g.mapped(tr.R, g.clusterOf(tr.H))
}

// NegativeTail draws a corrupted tail outside the target cluster.
func (g *KGGen) NegativeTail(tr Triple) uint64 {
	target := g.mapped(tr.R, g.clusterOf(tr.H))
	for {
		t := g.rng.Uint64n(g.cfg.Entities)
		if g.clusterOf(t) != target {
			return t
		}
	}
}

// Batch draws n triples.
func (g *KGGen) Batch(n int) []Triple {
	out := make([]Triple, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
