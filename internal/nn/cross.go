package nn

import (
	"math"
	"sync"

	"github.com/llm-db/mlkv-go/internal/tensor"
	"github.com/llm-db/mlkv-go/internal/util"
)

func log64(x float64) float64 { return math.Log(x) }

// CrossStack implements DCN's cross network (Wang et al., ADKDD'17):
//
//	x_{l+1} = x_0 · (w_lᵀ x_l) + b_l + x_l
//
// which models bounded-degree feature interactions explicitly. Combined
// with an MLP tower it forms the paper's "DCN" DLRM variant.
type CrossStack struct {
	Mu     sync.RWMutex
	Dim    int
	Layers int
	W      [][]float32 // one weight vector per layer
	B      [][]float32
}

// NewCrossStack builds a cross network for inputs of the given dimension.
func NewCrossStack(dim, layers int, seed uint64) *CrossStack {
	r := util.NewRNG(seed)
	c := &CrossStack{Dim: dim, Layers: layers}
	for l := 0; l < layers; l++ {
		w := make([]float32, dim)
		scale := float32(1.0 / float32(dim))
		for i := range w {
			w[i] = (r.Float32()*2 - 1) * scale
		}
		c.W = append(c.W, w)
		c.B = append(c.B, make([]float32, dim))
	}
	return c
}

// CrossWorker holds per-goroutine activations and gradient accumulators.
type CrossWorker struct {
	c   *CrossStack
	xs  [][]float32 // xs[l] = input to layer l; xs[Layers] = output
	dot []float32   // w_l · x_l per layer
	dW  [][]float32
	dB  [][]float32
	dx  []float32
	n   int
}

// NewWorker allocates a worker context.
func (c *CrossStack) NewWorker() *CrossWorker {
	w := &CrossWorker{c: c, dot: make([]float32, c.Layers), dx: make([]float32, c.Dim)}
	for l := 0; l <= c.Layers; l++ {
		w.xs = append(w.xs, make([]float32, c.Dim))
	}
	for l := 0; l < c.Layers; l++ {
		w.dW = append(w.dW, make([]float32, c.Dim))
		w.dB = append(w.dB, make([]float32, c.Dim))
	}
	return w
}

// Forward runs the cross stack; the returned slice is worker-owned.
func (w *CrossWorker) Forward(x0 []float32) []float32 {
	c := w.c
	c.Mu.RLock()
	defer c.Mu.RUnlock()
	copy(w.xs[0], x0)
	for l := 0; l < c.Layers; l++ {
		d := tensor.Dot(c.W[l], w.xs[l])
		w.dot[l] = d
		out := w.xs[l+1]
		for i := 0; i < c.Dim; i++ {
			out[i] = w.xs[0][i]*d + c.B[l][i] + w.xs[l][i]
		}
	}
	return w.xs[c.Layers]
}

// Backward accumulates gradients given dOut and returns dLoss/dx0.
func (w *CrossWorker) Backward(dOut []float32) []float32 {
	c := w.c
	c.Mu.RLock()
	defer c.Mu.RUnlock()
	dx := append([]float32(nil), dOut...)
	dx0 := make([]float32, c.Dim)
	for l := c.Layers - 1; l >= 0; l-- {
		// x_{l+1} = x0·d + b + x_l with d = w·x_l.
		// ∂L/∂d   = dx · x0
		dd := tensor.Dot(dx, w.xs[0])
		// ∂L/∂x0 += dx · d   (direct term; x0 also feeds shallower layers)
		tensor.Axpy(w.dot[l], dx, dx0)
		// ∂L/∂b  += dx
		tensor.Axpy(1, dx, w.dB[l])
		// ∂L/∂w  += dd · x_l
		tensor.Axpy(dd, w.xs[l], w.dW[l])
		// ∂L/∂x_l = dx + dd·w
		for i := 0; i < c.Dim; i++ {
			dx[i] += dd * c.W[l][i]
		}
	}
	// The layer-0 input is x0 itself: fold in the skip-path gradient.
	tensor.Axpy(1, dx, dx0)
	copy(w.dx, dx0)
	w.n++
	return w.dx
}

// Apply folds accumulated gradients into the shared parameters.
func (w *CrossWorker) Apply(lr float32) {
	if w.n == 0 {
		return
	}
	c := w.c
	scale := -lr / float32(w.n)
	c.Mu.Lock()
	for l := 0; l < c.Layers; l++ {
		tensor.Axpy(scale, w.dW[l], c.W[l])
		tensor.Axpy(scale, w.dB[l], c.B[l])
		tensor.Zero(w.dW[l])
		tensor.Zero(w.dB[l])
	}
	c.Mu.Unlock()
	w.n = 0
}
