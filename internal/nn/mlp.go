// Package nn implements the dense neural-network substrate: multi-layer
// perceptrons and DCN cross layers with hand-written backpropagation, plus
// binary-cross-entropy and softmax losses. Weights live in a shared Params
// set guarded by an RWMutex — workers run forward/backward under the read
// lock and apply accumulated gradients under the write lock, mirroring the
// synchronized dense-parameter updates that DL frameworks (DDP/AllReduce)
// perform while MLKV handles the sparse embeddings asynchronously.
package nn

import (
	"sync"

	"github.com/llm-db/mlkv-go/internal/tensor"
	"github.com/llm-db/mlkv-go/internal/util"
)

// MLP is a fully connected network with ReLU hidden activations and a
// linear output layer.
type MLP struct {
	Mu    sync.RWMutex
	Sizes []int       // e.g. [in, 64, 32, 1]
	W     [][]float32 // W[l] is Sizes[l+1] × Sizes[l], row-major
	B     [][]float32
}

// NewMLP builds an MLP with He-style uniform initialization.
func NewMLP(sizes []int, seed uint64) *MLP {
	r := util.NewRNG(seed)
	m := &MLP{Sizes: append([]int(nil), sizes...)}
	for l := 0; l < len(sizes)-1; l++ {
		in, out := sizes[l], sizes[l+1]
		w := make([]float32, in*out)
		scale := float32(2.44948974 / float32(in)) // ~sqrt(6/in)
		for i := range w {
			w[i] = (r.Float32()*2 - 1) * scale
		}
		m.W = append(m.W, w)
		m.B = append(m.B, make([]float32, out))
	}
	return m
}

// MLPWorker holds one goroutine's activations and gradient accumulators.
type MLPWorker struct {
	m    *MLP
	acts [][]float32 // acts[0] = input copy, acts[l+1] = layer l output
	dW   [][]float32
	dB   [][]float32
	dx   [][]float32
	n    int // accumulated examples
}

// NewWorker allocates a worker context.
func (m *MLP) NewWorker() *MLPWorker {
	w := &MLPWorker{m: m}
	w.acts = append(w.acts, make([]float32, m.Sizes[0]))
	for l := 0; l < len(m.W); l++ {
		w.acts = append(w.acts, make([]float32, m.Sizes[l+1]))
		w.dW = append(w.dW, make([]float32, len(m.W[l])))
		w.dB = append(w.dB, make([]float32, len(m.B[l])))
		w.dx = append(w.dx, make([]float32, m.Sizes[l]))
	}
	return w
}

// Forward runs the network on x (len Sizes[0]) and returns the output
// activations (len Sizes[last]). The returned slice is owned by the worker.
func (w *MLPWorker) Forward(x []float32) []float32 {
	m := w.m
	m.Mu.RLock()
	defer m.Mu.RUnlock()
	copy(w.acts[0], x)
	for l := 0; l < len(m.W); l++ {
		in, out := m.Sizes[l], m.Sizes[l+1]
		tensor.MatVec(m.W[l], out, in, w.acts[l], w.acts[l+1])
		for i := 0; i < out; i++ {
			w.acts[l+1][i] += m.B[l][i]
		}
		if l != len(m.W)-1 {
			tensor.ReLU(w.acts[l+1])
		}
	}
	return w.acts[len(w.acts)-1]
}

// Backward accumulates gradients for the last Forward call given dOut
// (gradient of the loss w.r.t. the output) and returns the gradient w.r.t.
// the input (owned by the worker, valid until the next call).
func (w *MLPWorker) Backward(dOut []float32) []float32 {
	m := w.m
	m.Mu.RLock()
	defer m.Mu.RUnlock()
	L := len(m.W)
	dy := append([]float32(nil), dOut...)
	for l := L - 1; l >= 0; l-- {
		in, out := m.Sizes[l], m.Sizes[l+1]
		if l != L-1 {
			tensor.ReLUGrad(w.acts[l+1], dy)
		}
		tensor.OuterAcc(w.dW[l], out, in, dy, w.acts[l])
		tensor.Axpy(1, dy, w.dB[l])
		tensor.MatVecT(m.W[l], out, in, dy, w.dx[l])
		dy = w.dx[l]
	}
	w.n++
	return w.dx[0]
}

// Apply folds the worker's accumulated gradients into the shared weights
// with SGD (mean gradient × lr) and clears the accumulators.
func (w *MLPWorker) Apply(lr float32) {
	if w.n == 0 {
		return
	}
	m := w.m
	scale := -lr / float32(w.n)
	m.Mu.Lock()
	for l := range m.W {
		tensor.Axpy(scale, w.dW[l], m.W[l])
		tensor.Axpy(scale, w.dB[l], m.B[l])
		tensor.Zero(w.dW[l])
		tensor.Zero(w.dB[l])
	}
	m.Mu.Unlock()
	w.n = 0
}

// BCEWithLogits returns the binary-cross-entropy loss and dLoss/dLogit for
// a single logit and 0/1 label.
func BCEWithLogits(logit float32, label float32) (loss, dLogit float32) {
	p := tensor.Sigmoid(logit)
	eps := float32(1e-7)
	if label > 0.5 {
		loss = -logf(p + eps)
	} else {
		loss = -logf(1 - p + eps)
	}
	return loss, p - label
}

// SoftmaxCE returns the cross-entropy loss and writes dLoss/dLogits into
// dLogits for an integer class label.
func SoftmaxCE(logits []float32, label int, probs, dLogits []float32) float32 {
	tensor.Softmax(logits, probs)
	eps := float32(1e-7)
	loss := -logf(probs[label] + eps)
	for i := range probs {
		dLogits[i] = probs[i]
	}
	dLogits[label] -= 1
	return loss
}

func logf(x float32) float32 {
	return float32(log64(float64(x)))
}
