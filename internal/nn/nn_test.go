package nn

import (
	"math"
	"sync"
	"testing"

	"github.com/llm-db/mlkv-go/internal/tensor"
	"github.com/llm-db/mlkv-go/internal/util"
)

// numGrad computes a central-difference gradient of f at x[i].
func numGrad(f func() float32, x []float32, i int) float32 {
	const h = 1e-3
	orig := x[i]
	x[i] = orig + h
	fp := float64(f())
	x[i] = orig - h
	fm := float64(f())
	x[i] = orig
	return float32((fp - fm) / (2 * h))
}

func TestMLPGradCheckInput(t *testing.T) {
	m := NewMLP([]int{5, 7, 1}, 1)
	w := m.NewWorker()
	r := util.NewRNG(2)
	x := make([]float32, 5)
	for i := range x {
		x[i] = r.Float32()*2 - 1
	}
	label := float32(1)
	lossAt := func() float32 {
		out := w.Forward(x)
		loss, _ := BCEWithLogits(out[0], label)
		return loss
	}
	out := w.Forward(x)
	_, dLogit := BCEWithLogits(out[0], label)
	dx := w.Backward([]float32{dLogit})
	for i := range x {
		want := numGrad(lossAt, x, i)
		if math.Abs(float64(dx[i]-want)) > 2e-2*(1+math.Abs(float64(want))) {
			t.Errorf("input grad %d: analytic %v numeric %v", i, dx[i], want)
		}
	}
}

func TestMLPGradCheckWeights(t *testing.T) {
	m := NewMLP([]int{4, 6, 1}, 3)
	w := m.NewWorker()
	r := util.NewRNG(4)
	x := make([]float32, 4)
	for i := range x {
		x[i] = r.Float32()*2 - 1
	}
	label := float32(0)
	lossAt := func() float32 {
		out := w.Forward(x)
		loss, _ := BCEWithLogits(out[0], label)
		return loss
	}
	out := w.Forward(x)
	_, dLogit := BCEWithLogits(out[0], label)
	w.Backward([]float32{dLogit})
	// Check a sample of weight gradients in each layer.
	for l := range m.W {
		for _, i := range []int{0, len(m.W[l]) / 2, len(m.W[l]) - 1} {
			want := numGrad(lossAt, m.W[l], i)
			got := w.dW[l][i]
			if math.Abs(float64(got-want)) > 2e-2*(1+math.Abs(float64(want))) {
				t.Errorf("layer %d W[%d]: analytic %v numeric %v", l, i, got, want)
			}
		}
		for _, i := range []int{0, len(m.B[l]) - 1} {
			want := numGrad(lossAt, m.B[l], i)
			got := w.dB[l][i]
			if math.Abs(float64(got-want)) > 2e-2*(1+math.Abs(float64(want))) {
				t.Errorf("layer %d B[%d]: analytic %v numeric %v", l, i, got, want)
			}
		}
	}
}

func TestCrossGradCheck(t *testing.T) {
	c := NewCrossStack(6, 3, 5)
	w := c.NewWorker()
	r := util.NewRNG(6)
	x := make([]float32, 6)
	for i := range x {
		x[i] = r.Float32()*2 - 1
	}
	// Scalar loss: sum of outputs squared / 2, so dOut = out.
	lossAt := func() float32 {
		out := w.Forward(x)
		var s float32
		for _, v := range out {
			s += v * v
		}
		return s / 2
	}
	out := w.Forward(x)
	dx := w.Backward(append([]float32(nil), out...))
	for i := range x {
		want := numGrad(lossAt, x, i)
		if math.Abs(float64(dx[i]-want)) > 2e-2*(1+math.Abs(float64(want))) {
			t.Errorf("x grad %d: analytic %v numeric %v", i, dx[i], want)
		}
	}
	for l := 0; l < c.Layers; l++ {
		for _, i := range []int{0, c.Dim - 1} {
			want := numGrad(lossAt, c.W[l], i)
			if got := w.dW[l][i]; math.Abs(float64(got-want)) > 2e-2*(1+math.Abs(float64(want))) {
				t.Errorf("layer %d w[%d]: analytic %v numeric %v", l, i, got, want)
			}
			wantB := numGrad(lossAt, c.B[l], i)
			if got := w.dB[l][i]; math.Abs(float64(got-wantB)) > 2e-2*(1+math.Abs(float64(wantB))) {
				t.Errorf("layer %d b[%d]: analytic %v numeric %v", l, i, got, wantB)
			}
		}
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	m := NewMLP([]int{2, 8, 1}, 7)
	w := m.NewWorker()
	data := [][3]float32{{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 0}}
	for epoch := 0; epoch < 4000; epoch++ {
		for _, d := range data {
			out := w.Forward(d[:2])
			_, dLogit := BCEWithLogits(out[0], d[2])
			w.Backward([]float32{dLogit})
		}
		w.Apply(0.5)
	}
	for _, d := range data {
		out := w.Forward(d[:2])
		p := tensor.Sigmoid(out[0])
		if (d[2] > 0.5) != (p > 0.5) {
			t.Fatalf("XOR(%v,%v): predicted %v, want %v", d[0], d[1], p, d[2])
		}
	}
}

func TestSoftmaxCE(t *testing.T) {
	logits := []float32{2, 1, 0.1}
	probs := make([]float32, 3)
	dl := make([]float32, 3)
	loss := SoftmaxCE(logits, 0, probs, dl)
	if loss <= 0 {
		t.Fatal("loss must be positive")
	}
	var sum float32
	for _, p := range probs {
		if p <= 0 || p >= 1 {
			t.Fatalf("prob out of range: %v", p)
		}
		sum += p
	}
	if math.Abs(float64(sum-1)) > 1e-5 {
		t.Fatalf("probs sum to %v", sum)
	}
	// Gradient sums to zero, negative at the label.
	var gsum float32
	for _, g := range dl {
		gsum += g
	}
	if math.Abs(float64(gsum)) > 1e-5 {
		t.Fatalf("gradient sum %v", gsum)
	}
	if dl[0] >= 0 {
		t.Fatal("label gradient should be negative")
	}
}

func TestBCEWithLogits(t *testing.T) {
	// Perfect confident prediction → tiny loss.
	loss, grad := BCEWithLogits(10, 1)
	if loss > 0.01 || math.Abs(float64(grad)) > 0.01 {
		t.Fatalf("confident correct: loss=%v grad=%v", loss, grad)
	}
	// Confident wrong → large loss, gradient ~1.
	loss, grad = BCEWithLogits(10, 0)
	if loss < 1 || grad < 0.9 {
		t.Fatalf("confident wrong: loss=%v grad=%v", loss, grad)
	}
}

func TestConcurrentWorkersShareWeights(t *testing.T) {
	m := NewMLP([]int{3, 4, 1}, 11)
	const workers = 4
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			w := m.NewWorker()
			r := util.NewRNG(seed)
			x := make([]float32, 3)
			for it := 0; it < 200; it++ {
				for j := range x {
					x[j] = r.Float32()
				}
				out := w.Forward(x)
				_, d := BCEWithLogits(out[0], float32(it%2))
				w.Backward([]float32{d})
				if it%10 == 9 {
					w.Apply(0.01)
				}
			}
		}(uint64(i))
	}
	wg.Wait()
}

func TestTensorKernels(t *testing.T) {
	w := []float32{1, 2, 3, 4, 5, 6} // 2x3
	x := []float32{1, 1, 1}
	y := make([]float32, 2)
	tensor.MatVec(w, 2, 3, x, y)
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MatVec: %v", y)
	}
	xt := make([]float32, 3)
	tensor.MatVecT(w, 2, 3, []float32{1, 1}, xt)
	if xt[0] != 5 || xt[1] != 7 || xt[2] != 9 {
		t.Fatalf("MatVecT: %v", xt)
	}
	dw := make([]float32, 6)
	tensor.OuterAcc(dw, 2, 3, []float32{1, 2}, []float32{3, 4, 5})
	if dw[0] != 3 || dw[5] != 10 {
		t.Fatalf("OuterAcc: %v", dw)
	}
	probs := make([]float32, 3)
	tensor.Softmax([]float32{1000, 1000, 1000}, probs) // overflow guard
	for _, p := range probs {
		if math.Abs(float64(p-1.0/3)) > 1e-5 {
			t.Fatalf("Softmax overflow: %v", probs)
		}
	}
	if tensor.ArgMax([]float32{1, 5, 3}) != 1 {
		t.Fatal("ArgMax")
	}
	v := []float32{3, -4}
	if tensor.Norm2(v) != 5 {
		t.Fatal("Norm2")
	}
	tensor.ClipInPlace(v, 2)
	if v[0] != 2 || v[1] != -2 {
		t.Fatal("ClipInPlace")
	}
}
