package mlkv_test

import (
	"testing"
	"time"

	"github.com/llm-db/mlkv-go/internal/latency"
	"github.com/llm-db/mlkv-go/internal/util"
)

// remoteGetBatchP99Budget is the committed tail ceiling for the remote
// 256-key GetBatch hot path, client and loopback server combined. The
// steady-state p99 on a loaded CI runner sits around a hundred
// microseconds (worst observed sample under half a millisecond); the
// budget is deliberately two orders of magnitude above that so it only
// trips on structural regressions — a lock convoy, a flush stall on the
// hot path, an accidental per-call sleep — not on scheduler noise.
const remoteGetBatchP99Budget = 25 * time.Millisecond

// TestRemoteGetBatchTailBudget is the tail-latency gate wired into CI
// next to the allocation gate: it fails when the remote hot read path's
// p99 exceeds the committed budget. It shares its harness (single-shard
// loopback server, 2^16 first-touched keys) with the allocation gate and
// BenchmarkRemoteGetBatch256, so all three watch the same path.
func TestRemoteGetBatchTailBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("tail gate needs a steady loopback server")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates latency unpredictably")
	}
	const (
		batch  = 256
		warmup = 64
		ops    = 2000
	)
	s, keys, dst := newRemoteBenchSession(t, batch, 0)
	zipf := util.NewScrambledZipf(util.NewRNG(7), remoteBenchRecords, 0.99)
	for i := 0; i < warmup; i++ {
		for j := range keys {
			keys[j] = zipf.Next()
		}
		if err := s.GetBatch(keys, dst); err != nil {
			t.Fatal(err)
		}
	}
	var lat latency.Histogram
	for i := 0; i < ops; i++ {
		for j := range keys {
			keys[j] = zipf.Next()
		}
		start := time.Now()
		if err := s.GetBatch(keys, dst); err != nil {
			t.Fatal(err)
		}
		lat.Since(start)
	}
	snap := lat.Snapshot()
	t.Logf("remote GetBatch(%d) over %d ops: p50=%.0fµs p99=%.0fµs p999=%.0fµs max=%.0fµs (budget p99 < %s)",
		batch, snap.Count, latency.Us(snap.P50), latency.Us(snap.P99),
		latency.Us(snap.P999), latency.Us(snap.Max), remoteGetBatchP99Budget)
	if p99 := time.Duration(snap.P99); p99 > remoteGetBatchP99Budget {
		t.Fatalf("remote GetBatch(%d) p99 = %s, budget %s — the tail regressed structurally",
			batch, p99, remoteGetBatchP99Budget)
	}
}
