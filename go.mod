module github.com/llm-db/mlkv-go

go 1.24
