//go:build race

package mlkv_test

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
