// Command mlkv-server serves a (optionally hash-partitioned) MLKV/FASTER
// store over TCP using the internal/wire framed binary protocol, turning
// the embedding store into a shared network service: many remote trainers
// or inference workers drive one sharded store concurrently, each server
// connection acting like one local worker session.
//
// Usage:
//
//	mlkv-server -addr 127.0.0.1:7070 -dir /data/mlkv -shards 4 \
//	            -valuesize 64 -buffer-mb 64 -records 1000000 -sync \
//	            -debug-addr 127.0.0.1:7071
//
// SIGINT/SIGTERM shut down gracefully: the listener closes, in-flight
// requests finish and flush, sessions drain, the store is checkpointed
// when -sync is set, and the final merged counters print. A second signal
// exits immediately.
//
// With -debug-addr set, an HTTP listener exposes expvar at /debug/vars,
// including the store's merged operation counters (mlkv_store) and the
// server's connection/request counters (mlkv_server).
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "TCP listen address")
		debugAddr = flag.String("debug-addr", "", "optional HTTP listen address for expvar (/debug/vars)")
		dir       = flag.String("dir", "", "data directory (default: temp, deleted on exit)")
		shards    = flag.Int("shards", 1, "hash partitions (independent store instances)")
		vs        = flag.Int("valuesize", 64, "value size in bytes")
		bufferMB  = flag.Int("buffer-mb", 64, "in-memory buffer budget (total, split across shards)")
		records   = flag.Uint64("records", 1<<20, "expected key count (sizes the hash indexes)")
		engine    = flag.String("engine", "mlkv", "engine semantics (mlkv|faster)")
		staleness = flag.Int64("staleness", -2, "staleness bound for mlkv: -2=asp (never blocks, default), 0=bsp, n>0=ssp")
		sync      = flag.Bool("sync", false, "fsync every flushed log page; also checkpoint on shutdown")
		drainSecs = flag.Int("drain-timeout", 10, "seconds to wait for connections to drain on shutdown")
	)
	flag.Parse()
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "-shards must be >= 1, got %d\n", *shards)
		os.Exit(2)
	}
	bound := *staleness
	if bound == -2 {
		bound = faster.BoundAsync
	} else if bound < 0 {
		fmt.Fprintf(os.Stderr, "-staleness must be -2 (asp) or >= 0 (bsp/ssp), got %d\n", bound)
		os.Exit(2)
	}
	if *engine == "faster" {
		bound = -1 // clock off entirely
	}
	d := *dir
	if d == "" {
		var err error
		d, err = os.MkdirTemp("", "mlkv-server-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(d)
	}
	store, err := kv.OpenFasterShards(kv.ShardedConfig{
		Dir: d, Shards: *shards, ValueSize: *vs, RecordsPerPage: 256,
		MemoryBytes: int64(*bufferMB) << 20, ExpectedKeys: *records,
		StalenessBound: bound, SyncWrites: *sync,
	}, *engine)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	srv := server.New(server.Config{Store: store, Logf: log.Printf})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	boundStr := "asp"
	switch {
	case bound < 0:
		boundStr = "off"
	case bound == 0:
		boundStr = "bsp"
	case bound != faster.BoundAsync:
		boundStr = fmt.Sprintf("ssp(%d)", bound)
	}
	log.Printf("mlkv-server: serving %s (shards=%d valuesize=%d buffer=%dMB staleness=%s sync=%v) on %s",
		*engine, *shards, *vs, *bufferMB, boundStr, *sync, ln.Addr())

	if *debugAddr != "" {
		expvar.Publish("mlkv_store", expvar.Func(func() any {
			if sr, ok := store.(kv.StatsReporter); ok {
				return sr.Stats()
			}
			return nil
		}))
		expvar.Publish("mlkv_server", expvar.Func(func() any { return srv.Stats() }))
		go func() {
			log.Printf("mlkv-server: expvar on http://%s/debug/vars", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("mlkv-server: debug listener: %v", err)
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("mlkv-server: %s: draining (again to force exit)", sig)
		go func() {
			<-sigCh
			log.Fatal("mlkv-server: forced exit")
		}()
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainSecs)*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("mlkv-server: drain incomplete: %v", err)
		}
		if err := <-serveErr; err != nil {
			log.Printf("mlkv-server: serve: %v", err)
		}
	case err := <-serveErr:
		if err != nil {
			log.Fatal(err)
		}
	}

	if *sync {
		if cp, ok := store.(kv.Checkpointer); ok {
			log.Printf("mlkv-server: checkpointing")
			if err := cp.Checkpoint(); err != nil {
				log.Printf("mlkv-server: checkpoint: %v", err)
			}
		}
	}
	st := srv.Stats()
	log.Printf("mlkv-server: served %d requests (%d batch keys, %d errors) over %d connections",
		st.Requests, st.BatchKeys, st.Errors, st.ConnsAccepted)
	if sr, ok := store.(kv.StatsReporter); ok {
		s := sr.Stats()
		log.Printf("mlkv-server: store gets=%d puts=%d deletes=%d memhits=%d diskreads=%d flushed=%dB",
			s.Gets, s.Puts, s.Deletes, s.MemHits, s.DiskReads, s.BytesFlushed)
	}
}
