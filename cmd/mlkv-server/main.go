// Command mlkv-server serves named embedding models over TCP using the
// internal/wire framed binary protocol — a shared multi-tenant embedding
// storage service: clients mlkv.Connect("mlkv://host:port") and Open any
// number of named models, which the server creates lazily under its data
// directory on the first OPEN (one optionally hash-partitioned MLKV/FASTER
// store per model). Many remote trainers or inference workers drive the
// models concurrently, each server connection acting like one local worker
// session per model it attaches.
//
// Usage:
//
//	mlkv-server -addr 127.0.0.1:7070 -dir /data/mlkv -shards 4 \
//	            -buffer-mb 64 -records 1000000 -sync \
//	            -debug-addr 127.0.0.1:7071
//
// Flags size each model the server opens: -shards, -buffer-mb, -records,
// and -staleness are per-model defaults (an OPEN may request its own shard
// count and staleness bound; dimensions always come from the client).
//
// SIGINT/SIGTERM shut down gracefully: the listener closes, in-flight
// requests finish and flush, sessions drain, every model is checkpointed
// when -sync is set, and the final per-model counters print. A second
// signal exits immediately.
//
// With -debug-addr set, an HTTP listener exposes expvar at /debug/vars,
// including per-model counters (mlkv_models) and the server's
// connection/request counters (mlkv_server).
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "TCP listen address")
		debugAddr = flag.String("debug-addr", "", "optional HTTP listen address for expvar (/debug/vars)")
		dir       = flag.String("dir", "", "data directory, one subdirectory per model (default: temp, deleted on exit)")
		shards    = flag.Int("shards", 1, "default hash partitions per model (an OPEN may request its own)")
		bufferMB  = flag.Int("buffer-mb", 64, "per-model in-memory buffer budget (total, split across its shards)")
		records   = flag.Uint64("records", 1<<20, "expected key count per model (sizes the hash indexes)")
		engine    = flag.String("engine", "mlkv", "engine semantics (mlkv|faster)")
		staleness = flag.Int64("staleness", -2, "default staleness bound for new models: -2=asp (never blocks, default), 0=bsp, n>0=ssp")
		cache     = flag.Int("cache", 0, "per-model server-side hot-tier capacity in entries (0 disables); cached reads are served only within each model's staleness bound")
		sync      = flag.Bool("sync", false, "fsync every flushed log page; also checkpoint all models on shutdown")
		drainSecs = flag.Int("drain-timeout", 10, "seconds to wait for connections to drain on shutdown")
	)
	flag.Parse()
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "-shards must be >= 1, got %d\n", *shards)
		os.Exit(2)
	}
	defaultBound := *staleness
	if defaultBound == -2 {
		defaultBound = faster.BoundAsync
	} else if defaultBound < 0 {
		fmt.Fprintf(os.Stderr, "-staleness must be -2 (asp) or >= 0 (bsp/ssp), got %d\n", defaultBound)
		os.Exit(2)
	}
	if *engine == "faster" {
		defaultBound = -1 // clock off entirely
	}
	d := *dir
	if d == "" {
		var err error
		d, err = os.MkdirTemp("", "mlkv-server-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(d)
	}

	reg := server.NewRegistry(server.RegistryConfig{
		DefaultShards: *shards,
		DefaultBound:  defaultBound,
		CacheEntries:  *cache,
		Name:          *engine,
		Opener: func(id string, dim, shards int, bound int64) (kv.Store, error) {
			if *engine == "faster" {
				bound = -1
			}
			log.Printf("mlkv-server: opening model %q (dim=%d shards=%d staleness=%s)",
				id, dim, shards, boundName(bound))
			return kv.OpenFasterShards(kv.ShardedConfig{
				Dir: filepath.Join(d, id), Shards: shards, ValueSize: dim * 4,
				RecordsPerPage: 256, MemoryBytes: int64(*bufferMB) << 20,
				ExpectedKeys: *records, StalenessBound: bound, SyncWrites: *sync,
			}, *engine)
		},
	})
	defer reg.Close()

	srv := server.New(server.Config{Registry: reg, Logf: log.Printf})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("mlkv-server: serving %s models (default shards=%d buffer=%dMB/model staleness=%s cache=%d sync=%v) on %s",
		*engine, *shards, *bufferMB, boundName(defaultBound), *cache, *sync, ln.Addr())

	if *debugAddr != "" {
		expvar.Publish("mlkv_models", expvar.Func(func() any {
			out := map[string]any{}
			for _, m := range reg.Models() {
				out[m.ID()] = m.Stats()
			}
			return out
		}))
		expvar.Publish("mlkv_server", expvar.Func(func() any { return srv.Stats() }))
		go func() {
			log.Printf("mlkv-server: expvar on http://%s/debug/vars", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("mlkv-server: debug listener: %v", err)
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("mlkv-server: %s: draining (again to force exit)", sig)
		go func() {
			<-sigCh
			log.Fatal("mlkv-server: forced exit")
		}()
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainSecs)*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("mlkv-server: drain incomplete: %v", err)
		}
		if err := <-serveErr; err != nil {
			log.Printf("mlkv-server: serve: %v", err)
		}
	case err := <-serveErr:
		if err != nil {
			log.Fatal(err)
		}
	}

	if *sync {
		log.Printf("mlkv-server: checkpointing all models")
		if err := reg.Checkpoint(); err != nil {
			log.Printf("mlkv-server: checkpoint: %v", err)
		}
	}
	st := srv.Stats()
	log.Printf("mlkv-server: served %d requests (%d batch keys, %d errors) over %d connections",
		st.Requests, st.BatchKeys, st.Errors, st.ConnsAccepted)
	for _, m := range reg.Models() {
		s := m.Stats()
		log.Printf("mlkv-server: model %q: gets=%d puts=%d batchGets=%d batchPuts=%d lookaheadFrames=%d sessions=%d memhits=%d diskreads=%d flushed=%dB",
			m.ID(), s.Gets, s.Puts, s.BatchGets, s.BatchPuts, s.LookaheadFrames,
			s.ActiveSessions, s.MemHits, s.DiskReads, s.BytesFlushed)
	}
}

// boundName renders a staleness bound the way the flags spell it.
func boundName(bound int64) string {
	switch {
	case bound < 0:
		return "off"
	case bound == 0:
		return "bsp"
	case bound == faster.BoundAsync:
		return "asp"
	}
	return fmt.Sprintf("ssp(%d)", bound)
}
