// Command mlkv-server serves named embedding models over TCP using the
// internal/wire framed binary protocol — a shared multi-tenant embedding
// storage service: clients mlkv.Connect("mlkv://host:port") and Open any
// number of named models, which the server creates lazily under its data
// directory on the first OPEN (one optionally hash-partitioned MLKV/FASTER
// store per model). Many remote trainers or inference workers drive the
// models concurrently, each server connection acting like one local worker
// session per model it attaches.
//
// Usage:
//
//	mlkv-server -addr 127.0.0.1:7070 -dir /data/mlkv -shards 4 \
//	            -buffer-mb 64 -records 1000000 -sync \
//	            -engine mlkv -model-engine eval-model=bptree \
//	            -debug-addr 127.0.0.1:7071
//
// Flags size each model the server opens: -shards, -buffer-mb, -records,
// and -staleness are per-model defaults (an OPEN may request its own shard
// count and staleness bound; dimensions always come from the client).
//
// The storage engine behind each model resolves in precedence order: a
// -model-engine id=engine pin, then the engine the client's OPEN frame
// requested (mlkv.WithEngine), then the -engine default. A pinned model
// refuses OPENs requesting a different engine. The clock-free engines
// (lsm, bptree) have no staleness clock, so models they back always open
// with the bound off.
//
// SIGINT/SIGTERM shut down gracefully: the listener closes, in-flight
// requests finish and flush, sessions drain, every model is checkpointed
// when -sync is set, and the final per-model counters print. A second
// signal exits immediately.
//
// With -debug-addr set, an HTTP listener exposes expvar at /debug/vars —
// per-model counters (mlkv_models), per-model per-op-class latency
// percentiles (mlkv_latency), per-engine aggregates (mlkv_engines), and
// the server's connection/request counters (mlkv_server) — plus the
// net/http/pprof profiling endpoints under /debug/pprof/ on the same
// listener, so a CPU or heap profile of a live server is one curl away.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // /debug/pprof/ on the -debug-addr listener
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"github.com/llm-db/mlkv-go/internal/cluster"
	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/latency"
	"github.com/llm-db/mlkv-go/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "TCP listen address")
		debugAddr = flag.String("debug-addr", "", "optional HTTP listen address for expvar (/debug/vars, incl. mlkv_latency percentiles) and pprof (/debug/pprof/)")
		dir       = flag.String("dir", "", "data directory, one subdirectory per model (default: temp, deleted on exit)")
		shards    = flag.Int("shards", 1, "default hash partitions per model (an OPEN may request its own)")
		bufferMB  = flag.Int("buffer-mb", 64, "per-model in-memory buffer budget (total, split across its shards)")
		records   = flag.Uint64("records", 1<<20, "expected key count per model (sizes the hash indexes)")
		engine    = flag.String("engine", "mlkv", "default storage engine for new models (mlkv|faster|lsm|bptree); faster is the hybrid log with the clock off")
		staleness = flag.Int64("staleness", -2, "default staleness bound for new models: -2=asp (never blocks, default), 0=bsp, n>0=ssp")
		cache     = flag.Int("cache", 0, "per-model server-side hot-tier capacity in entries (0 disables); cached reads are served only within each model's staleness bound")
		sync      = flag.Bool("sync", false, "fsync every flushed log page; also checkpoint all models on shutdown")
		flushPace = flag.Duration("flush-pace", 0, "minimum gap between background flush writes per model shard, smearing flush bursts away from the read tail (0 = unpaced); adjacent frozen pages still merge into group-commit writes")
		drainSecs = flag.Int("drain-timeout", 10, "seconds to wait for connections to drain on shutdown")
		clusterID    = flag.String("cluster", "", "run as one node of a cluster, with this node id; clients connect with mlkv://host1,host2,... and route by hash range")
		joinAddr     = flag.String("join", "", "host:port of any existing cluster node to join through (requires -cluster); omitted, this node seeds a new cluster")
		replicaOf    = flag.String("replica-of", "", "serve as a read replica of the named primary node instead of owning ranges (requires -cluster and -join)")
		advertise    = flag.String("advertise", "", "address other nodes and clients dial to reach this node (default: the bound -addr)")
		heartbeat    = flag.Duration("heartbeat", 500*time.Millisecond, "cluster heartbeat interval between peers")
		suspectAfter = flag.Duration("suspect-after", 2*time.Second, "how long a silent peer is tolerated before this node suspects it dead; a quorum of suspecting peers confirms the death and triggers replica promotion")
	)
	modelEngines := map[string]string{}
	flag.Func("model-engine", "pin a model to an engine as id=engine (repeatable); a pinned model refuses OPENs requesting another engine", func(v string) error {
		id, eng, ok := strings.Cut(v, "=")
		if !ok || id == "" {
			return fmt.Errorf("want id=engine, got %q", v)
		}
		canonical, err := kv.NormalizeEngine(eng)
		if err != nil {
			return err
		}
		modelEngines[id] = canonical
		return nil
	})
	flag.Parse()
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "-shards must be >= 1, got %d\n", *shards)
		os.Exit(2)
	}
	defaultEngine, err := kv.NormalizeEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-engine: %v\n", err)
		os.Exit(2)
	}
	defaultBound := *staleness
	if defaultBound == -2 {
		defaultBound = faster.BoundAsync
	} else if defaultBound < 0 {
		fmt.Fprintf(os.Stderr, "-staleness must be -2 (asp) or >= 0 (bsp/ssp), got %d\n", defaultBound)
		os.Exit(2)
	}
	if *engine == "faster" || kv.ClockFree(defaultEngine) {
		defaultBound = -1 // clock off entirely
	}
	d := *dir
	if d == "" {
		var err error
		d, err = os.MkdirTemp("", "mlkv-server-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(d)
	}

	reg := server.NewRegistry(server.RegistryConfig{
		DefaultShards: *shards,
		DefaultBound:  defaultBound,
		CacheEntries:  *cache,
		Name:          *engine,
		Opener: func(id string, dim, shards int, bound int64, reqEngine string) (kv.Store, error) {
			eng := reqEngine
			if pinned, ok := modelEngines[id]; ok {
				if reqEngine != "" && reqEngine != pinned {
					return nil, fmt.Errorf("model %q is pinned to engine %q, client requested %q", id, pinned, reqEngine)
				}
				eng = pinned
			} else if eng == "" {
				eng = defaultEngine
			}
			if *engine == "faster" || kv.ClockFree(eng) {
				bound = -1
			}
			log.Printf("mlkv-server: opening model %q (engine=%s dim=%d shards=%d staleness=%s)",
				id, eng, dim, shards, boundName(bound))
			name := eng
			if eng == kv.EngineFaster {
				name = *engine // keep the mlkv/faster naming the flag chose
			}
			return kv.OpenEngine(eng, kv.ShardedConfig{
				Dir: filepath.Join(d, id), Shards: shards, ValueSize: dim * 4,
				RecordsPerPage: 256, MemoryBytes: int64(*bufferMB) << 20,
				ExpectedKeys: *records, StalenessBound: bound, SyncWrites: *sync,
				FlushPace: *flushPace,
			}, name)
		},
	})
	defer reg.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}

	var clusterState *cluster.State
	if *replicaOf != "" && (*clusterID == "" || *joinAddr == "") {
		log.Fatal("mlkv-server: -replica-of requires -cluster and -join (a replica cannot seed a cluster)")
	}
	if *joinAddr != "" && *clusterID == "" {
		log.Fatal("mlkv-server: -join requires -cluster <node-id>")
	}
	// A persisted map under the data dir means this node was already a
	// cluster member: recover the topology from disk so a full-cluster
	// restart needs no -cluster/-join flags at all. An explicit -join
	// outranks the file (the operator is re-homing the node); a corrupt
	// file is fatal rather than silently re-seeding a one-node cluster.
	savedSelf, savedMap, loadErr := cluster.LoadMap(d)
	if loadErr != nil && !errors.Is(loadErr, cluster.ErrNoSavedMap) {
		log.Fatalf("mlkv-server: %v (remove the cluster-map file under %s to re-seed)", loadErr, d)
	}
	if savedMap != nil && *joinAddr == "" {
		if *clusterID != "" && *clusterID != savedSelf {
			log.Fatalf("mlkv-server: -cluster %q does not match node id %q persisted under %s", *clusterID, savedSelf, d)
		}
		clusterState, err = cluster.NewState(savedSelf, savedMap)
		if err != nil {
			log.Fatalf("mlkv-server: persisted cluster map under %s: %v", d, err)
		}
		log.Printf("mlkv-server: cluster node %q recovered topology from disk (%d nodes, epoch %d)",
			savedSelf, len(savedMap.Nodes), savedMap.Epoch)
		// The file is only as fresh as our last run: exchange maps with the
		// other members so a promotion or join that happened while this node
		// was down supersedes the stale epoch before we serve.
		for i := range savedMap.Nodes {
			n := &savedMap.Nodes[i]
			if n.ID == savedSelf {
				continue
			}
			if got, err := cluster.PushMap(n.Addr, savedMap, 2*time.Second); err == nil && got != nil {
				if clusterState.Adopt(got) {
					log.Printf("mlkv-server: peer %s (%s) superseded persisted map (epoch %d -> %d)",
						n.ID, n.Addr, savedMap.Epoch, got.Epoch)
				}
			}
		}
	} else if *clusterID != "" {
		adv := *advertise
		if adv == "" {
			adv = ln.Addr().String()
			// A wildcard bind ("-addr :7070" → "[::]:7070") is not dialable
			// from other machines, and the advertised address is gossiped in
			// the cluster map — a silent misroute waiting to happen.
			if host, _, err := net.SplitHostPort(adv); err == nil {
				if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
					log.Fatalf("mlkv-server: bound address %s has no routable host to gossip; set -advertise host:port", adv)
				}
			}
		}
		self := cluster.Node{ID: *clusterID, Addr: adv, Role: cluster.RolePrimary, PrimaryID: *replicaOf}
		if *replicaOf != "" {
			self.Role = cluster.RoleReplica
		}
		if *joinAddr == "" {
			m, err := cluster.BuildMap([]cluster.Node{self})
			if err != nil {
				log.Fatalf("mlkv-server: -cluster: %v", err)
			}
			clusterState, err = cluster.NewState(*clusterID, m)
			if err != nil {
				log.Fatalf("mlkv-server: -cluster: %v", err)
			}
			log.Printf("mlkv-server: cluster node %q seeding a new cluster (epoch %d)", *clusterID, m.Epoch)
		} else {
			m, err := cluster.JoinCluster(*joinAddr, self, 5*time.Second)
			if err != nil {
				log.Fatalf("mlkv-server: -join %s: %v", *joinAddr, err)
			}
			clusterState, err = cluster.NewState(*clusterID, m)
			if err != nil {
				log.Fatalf("mlkv-server: -join: %v", err)
			}
			// Gossip the merged map to the members the seed knew about, so
			// every node redirects with the same epoch without waiting for a
			// client to wander by.
			for i := range m.Nodes {
				n := &m.Nodes[i]
				if n.ID == *clusterID || n.Addr == *joinAddr {
					continue
				}
				if _, err := cluster.PushMap(n.Addr, m, 5*time.Second); err != nil {
					log.Printf("mlkv-server: gossip to %s (%s): %v", n.ID, n.Addr, err)
				}
			}
			log.Printf("mlkv-server: cluster node %q joined via %s (%d nodes, epoch %d)",
				*clusterID, *joinAddr, len(m.Nodes), m.Epoch)
		}
	}
	if clusterState != nil {
		// Persist every adopted map under the data dir (atomic rename), so
		// the topology this node last agreed to survives a restart.
		if err := clusterState.EnablePersistence(d); err != nil {
			log.Printf("mlkv-server: cluster map persistence: %v", err)
		}
		clusterState.EnableReplication()
		clusterState.StartHealth(cluster.HealthConfig{
			Interval:     *heartbeat,
			SuspectAfter: *suspectAfter,
			Watermark:    reg.ReplWatermark,
			Logf:         log.Printf,
		})
		defer clusterState.Close()
	}

	srvCfg := server.Config{Registry: reg, Logf: log.Printf}
	if clusterState != nil { // a typed nil must not become a non-nil interface
		srvCfg.Cluster = clusterState
	}
	srv := server.New(srvCfg)
	log.Printf("mlkv-server: serving %s models (default shards=%d buffer=%dMB/model staleness=%s cache=%d sync=%v) on %s",
		*engine, *shards, *bufferMB, boundName(defaultBound), *cache, *sync, ln.Addr())

	if *debugAddr != "" {
		expvar.Publish("mlkv_models", expvar.Func(func() any {
			out := map[string]any{}
			for _, m := range reg.Models() {
				out[m.ID()] = m.Stats()
			}
			return out
		}))
		expvar.Publish("mlkv_engines", expvar.Func(func() any {
			type engineAgg struct {
				Models                           int
				Gets, Puts, BatchGets, BatchPuts int64
				MemHits, DiskReads               int64
				ActiveSessions                   int64
			}
			out := map[string]*engineAgg{}
			for _, m := range reg.Models() {
				agg := out[m.Engine()]
				if agg == nil {
					agg = &engineAgg{}
					out[m.Engine()] = agg
				}
				s := m.Stats()
				agg.Models++
				agg.Gets += s.Gets
				agg.Puts += s.Puts
				agg.BatchGets += s.BatchGets
				agg.BatchPuts += s.BatchPuts
				agg.MemHits += s.MemHits
				agg.DiskReads += s.DiskReads
				agg.ActiveSessions += s.ActiveSessions
			}
			return out
		}))
		expvar.Publish("mlkv_latency", expvar.Func(func() any {
			// model → op class → percentile summary (µs), from the
			// always-on per-model histograms. Op classes with no traffic
			// are omitted so the JSON stays readable.
			type opLat struct {
				Count                       int64
				P50us, P99us, P999us, Maxus float64
			}
			out := map[string]map[string]opLat{}
			for _, m := range reg.Models() {
				snaps := m.Latency().Snapshot()
				ops := map[string]opLat{}
				for op, s := range snaps {
					if s.Count == 0 {
						continue
					}
					ops[latency.Op(op).String()] = opLat{
						Count: s.Count,
						P50us: latency.Us(s.P50), P99us: latency.Us(s.P99),
						P999us: latency.Us(s.P999), Maxus: latency.Us(s.Max),
					}
				}
				out[m.ID()] = ops
			}
			return out
		}))
		expvar.Publish("mlkv_server", expvar.Func(func() any { return srv.Stats() }))
		go func() {
			log.Printf("mlkv-server: expvar on http://%s/debug/vars", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("mlkv-server: debug listener: %v", err)
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("mlkv-server: %s: draining (again to force exit)", sig)
		go func() {
			<-sigCh
			log.Fatal("mlkv-server: forced exit")
		}()
		if clusterState != nil {
			// Tell the peers this is a planned exit so they tombstone this
			// node immediately instead of waiting out the suspicion timeout.
			cluster.AnnounceLeave(clusterState.Map(), clusterState.Self(), 2*time.Second)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainSecs)*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("mlkv-server: drain incomplete: %v", err)
		}
		if err := <-serveErr; err != nil {
			log.Printf("mlkv-server: serve: %v", err)
		}
	case err := <-serveErr:
		if err != nil {
			log.Fatal(err)
		}
	}

	if *sync {
		log.Printf("mlkv-server: checkpointing all models")
		if err := reg.Checkpoint(); err != nil {
			log.Printf("mlkv-server: checkpoint: %v", err)
		}
	}
	st := srv.Stats()
	log.Printf("mlkv-server: served %d requests (%d batch keys, %d errors) over %d connections",
		st.Requests, st.BatchKeys, st.Errors, st.ConnsAccepted)
	for _, m := range reg.Models() {
		s := m.Stats()
		log.Printf("mlkv-server: model %q: gets=%d puts=%d batchGets=%d batchPuts=%d lookaheadFrames=%d sessions=%d memhits=%d diskreads=%d flushed=%dB",
			m.ID(), s.Gets, s.Puts, s.BatchGets, s.BatchPuts, s.LookaheadFrames,
			s.ActiveSessions, s.MemHits, s.DiskReads, s.BytesFlushed)
	}
}

// boundName renders a staleness bound the way the flags spell it.
func boundName(bound int64) string {
	switch {
	case bound < 0:
		return "off"
	case bound == 0:
		return "bsp"
	case bound == faster.BoundAsync:
		return "asp"
	}
	return fmt.Sprintf("ssp(%d)", bound)
}
