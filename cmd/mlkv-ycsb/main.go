// Command mlkv-ycsb runs the YCSB-style NoSQL benchmark (Figure 10)
// against the MLKV/FASTER engine — in-process, optionally hash-partitioned
// across multiple shards (-shards), or against a remote mlkv-server
// (-addr), opening the named model (-model, created on first open) with
// every client thread on its own pooled connection and the load phase
// shipping batched frames.
//
// Usage:
//
//	mlkv-ycsb -records 1000000 -ops 5000000 -threads 8 -dist zipfian \
//	          -valuesize 64 -buffer-mb 64 -engine mlkv -shards 4
//	mlkv-ycsb -addr 127.0.0.1:7070 -records 100000 -ops 1000000 -threads 8
//
// Results include per-op-class latency percentiles (read and update
// p50/p99/p999 in microseconds) alongside throughput, recorded across
// every client thread by the always-on histograms.
//
// SIGINT/SIGTERM end the run gracefully: workers finish their current
// operation, the partial result — counters and latency lines covering
// the partial run — and engine counters print, and (locally, with -sync)
// the store is checkpointed. A second signal exits immediately.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/llm-db/mlkv-go/internal/driver"
	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/latency"
	"github.com/llm-db/mlkv-go/internal/ycsb"
)

func main() {
	var (
		records  = flag.Uint64("records", 1<<20, "number of preloaded records")
		ops      = flag.Int64("ops", 1<<21, "operations to run")
		threads  = flag.Int("threads", 8, "client threads")
		distName = flag.String("dist", "zipfian", "request distribution (uniform|zipfian)")
		vs       = flag.Int("valuesize", 64, "value size in bytes (local engines)")
		bufferMB = flag.Int("buffer-mb", 64, "in-memory buffer budget (total, split across shards)")
		engine   = flag.String("engine", "mlkv", "engine (mlkv|faster)")
		readFrac = flag.Float64("read-fraction", 0.5, "fraction of reads")
		dir      = flag.String("dir", "", "data directory (default: temp)")
		shards   = flag.Int("shards", 1, "hash partitions (independent store instances)")
		sync     = flag.Bool("sync", false, "fsync every flushed log page; checkpoint at the end")
		addr     = flag.String("addr", "", "run against a remote mlkv-server at this address instead of in-process")
		model    = flag.String("model", "ycsb", "model name to open on the remote server")
		cache    = flag.Int("cache", 0, "staleness-aware hot-tier capacity in entries, layered client-side over the store (0 disables)")
		hedge    = flag.Duration("hedge", 0, "remote only: re-issue reads slower than this as clock-free duplicates on a second connection (0 disables; requires -hedge-adaptive or a positive delay)")
		hedgeAda = flag.Bool("hedge-adaptive", false, "remote only: hedge reads slower than the pool's own observed p99 (-hedge then caps the warmup fallback)")
	)
	flag.Parse()
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "-shards must be >= 1, got %d\n", *shards)
		os.Exit(2)
	}

	var dist ycsb.Distribution
	switch *distName {
	case "uniform":
		dist = ycsb.Uniform
	case "zipfian":
		dist = ycsb.Zipfian
	default:
		fmt.Fprintf(os.Stderr, "unknown distribution %q\n", *distName)
		os.Exit(2)
	}

	var store kv.Store
	if *addr != "" {
		// Remote: open the named model on the server (created on first
		// open; the server owns buffer sizing). Models are float32-typed,
		// so -valuesize must be a multiple of 4. One pooled connection
		// per client thread keeps the fan-out on the server's side equal
		// to the local run's session count.
		if *vs%4 != 0 {
			fmt.Fprintf(os.Stderr, "-valuesize must be a multiple of 4 for a remote model, got %d\n", *vs)
			os.Exit(2)
		}
		cl, err := driver.DialKVHedged(*addr, *model, *vs/4, *threads, *hedge, *hedgeAda)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		store = cl
		fmt.Printf("remote store %s model %q at %s: valuesize=%d shards=%d hedge=%s adaptive=%v\n",
			cl.Name(), *model, *addr, cl.ValueSize(), storeShards(cl, 1), *hedge, *hedgeAda)
	} else {
		bound := faster.BoundAsync // MLKV: clock maintained, never blocks
		if *engine == "faster" {
			bound = -1
		}
		d := *dir
		if d == "" {
			var err error
			d, err = os.MkdirTemp("", "mlkv-ycsb-*")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer os.RemoveAll(d)
		}
		var err error
		store, err = kv.OpenFasterShards(kv.ShardedConfig{
			Dir: d, Shards: *shards, ValueSize: *vs, RecordsPerPage: 256,
			MemoryBytes: int64(*bufferMB) << 20, ExpectedKeys: *records,
			StalenessBound: bound, SyncWrites: *sync,
		}, *engine)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *cache > 0 {
		// The tier sits above whichever store the flags picked — local
		// shards or a remote model — and serves hot keys within the
		// staleness bound without touching it.
		store = kv.WrapCached(store, *cache)
	}
	defer store.Close()

	// Graceful interrupt: close the stop channel so workers wind down and
	// the partial result prints; a second signal force-exits.
	stop := make(chan struct{})
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		fmt.Println("\ninterrupt: draining workers (again to force exit)")
		close(stop)
		<-sigCh
		fmt.Fprintln(os.Stderr, "forced exit")
		os.Exit(130)
	}()

	fmt.Printf("loading %d records...\n", *records)
	res, err := ycsb.Run(ycsb.Options{
		Store: store, Records: *records, Threads: *threads,
		ReadFraction: *readFrac, Dist: dist, MaxOps: *ops, Seed: 42,
		Stop: stop,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		if errors.Is(err, ycsb.ErrLoadInterrupted) {
			os.Exit(130)
		}
		os.Exit(1)
	}
	if *sync && *addr == "" {
		if cp, ok := store.(kv.Checkpointer); ok {
			if err := cp.Checkpoint(); err != nil {
				fmt.Fprintln(os.Stderr, "checkpoint:", err)
			}
		}
	}
	fmt.Printf("engine=%s dist=%s threads=%d valuesize=%d shards=%d\n",
		store.Name(), dist, *threads, store.ValueSize(), storeShards(store, *shards))
	fmt.Printf("ops=%d reads=%d updates=%d elapsed=%s throughput=%.0f ops/s\n",
		res.Ops, res.Reads, res.Updates, res.Elapsed.Round(1e6), res.Throughput)
	printLatency("read", res.ReadLat)
	printLatency("update", res.UpdateLat)
	if sr, ok := store.(kv.StatsReporter); ok {
		s := sr.Stats()
		fmt.Printf("store: gets=%d puts=%d memhits=%d diskreads=%d inplace=%d rcu=%d flushed=%dB\n",
			s.Gets, s.Puts, s.MemHits, s.DiskReads, s.InPlaceUpdates, s.RCUAppends, s.BytesFlushed)
	}
	if hr, ok := store.(interface {
		HedgeStats() (issued, won, wasted, suppressed int64)
	}); ok {
		if issued, won, wasted, suppressed := hr.HedgeStats(); issued+suppressed > 0 {
			fmt.Printf("hedge: issued=%d won=%d wasted=%d suppressed=%d\n",
				issued, won, wasted, suppressed)
		}
	}
	if cr, ok := store.(kv.CacheStatsReporter); ok {
		cs := cr.CacheStats()
		total := cs.Hits + cs.Misses
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(cs.Hits) / float64(total)
		}
		fmt.Printf("cache: hits=%d misses=%d evictions=%d hit-rate=%.1f%%\n",
			cs.Hits, cs.Misses, cs.Evictions, pct)
	}
}

// printLatency renders one op class's percentile line in microseconds.
// On a graceful early stop the snapshot covers the partial run, so the
// line still prints; a class with no operations is skipped.
func printLatency(class string, s latency.Snapshot) {
	if s.Count == 0 {
		return
	}
	fmt.Printf("%s latency (µs): p50=%.1f p99=%.1f p999=%.1f max=%.1f (n=%d)\n",
		class, latency.Us(s.P50), latency.Us(s.P99), latency.Us(s.P999),
		latency.Us(s.Max), s.Count)
}

// storeShards reports the store's actual partition count (the server's,
// when remote) falling back to the local flag.
func storeShards(store kv.Store, flagShards int) int {
	if sh, ok := store.(kv.Sharded); ok {
		return sh.Shards()
	}
	return flagShards
}
