// Command mlkv-ycsb runs the YCSB-style NoSQL benchmark (Figure 10)
// against the MLKV/FASTER engine.
//
// Usage:
//
//	mlkv-ycsb -records 1000000 -ops 5000000 -threads 8 -dist zipfian \
//	          -valuesize 64 -buffer-mb 64 -engine mlkv
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/ycsb"
)

func main() {
	var (
		records  = flag.Uint64("records", 1<<20, "number of preloaded records")
		ops      = flag.Int64("ops", 1<<21, "operations to run")
		threads  = flag.Int("threads", 8, "client threads")
		distName = flag.String("dist", "zipfian", "request distribution (uniform|zipfian)")
		vs       = flag.Int("valuesize", 64, "value size in bytes")
		bufferMB = flag.Int("buffer-mb", 64, "in-memory buffer budget")
		engine   = flag.String("engine", "mlkv", "engine (mlkv|faster)")
		readFrac = flag.Float64("read-fraction", 0.5, "fraction of reads")
		dir      = flag.String("dir", "", "data directory (default: temp)")
	)
	flag.Parse()

	var dist ycsb.Distribution
	switch *distName {
	case "uniform":
		dist = ycsb.Uniform
	case "zipfian":
		dist = ycsb.Zipfian
	default:
		fmt.Fprintf(os.Stderr, "unknown distribution %q\n", *distName)
		os.Exit(2)
	}
	bound := faster.BoundAsync // MLKV: clock maintained, never blocks
	if *engine == "faster" {
		bound = -1
	}
	d := *dir
	if d == "" {
		var err error
		d, err = os.MkdirTemp("", "mlkv-ycsb-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(d)
	}
	recBytes := int64(*vs + 24)
	const rpp = 256
	memPages := int64(*bufferMB) << 20 / (recBytes * rpp)
	if memPages < 4 {
		memPages = 4
	}
	st, err := faster.Open(faster.Config{
		Dir: d, ValueSize: *vs, RecordsPerPage: rpp,
		MemPages: int(memPages), MutablePages: int(memPages / 2),
		StalenessBound: bound, ExpectedKeys: *records,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	store := kv.WrapFaster(st, *engine)
	defer store.Close()

	fmt.Printf("loading %d records...\n", *records)
	res, err := ycsb.Run(ycsb.Options{
		Store: store, Records: *records, Threads: *threads,
		ReadFraction: *readFrac, Dist: dist, MaxOps: *ops, Seed: 42,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("engine=%s dist=%s threads=%d valuesize=%d buffer=%dMB\n",
		*engine, dist, *threads, *vs, *bufferMB)
	fmt.Printf("ops=%d reads=%d updates=%d elapsed=%s throughput=%.0f ops/s\n",
		res.Ops, res.Reads, res.Updates, res.Elapsed.Round(1e6), res.Throughput)
}
