// Command mlkv-ycsb runs the YCSB-style NoSQL benchmark (Figure 10)
// against the MLKV/FASTER engine, optionally hash-partitioned across
// multiple shards (-shards) to compare sharded against unsharded
// throughput under the same total memory budget.
//
// Usage:
//
//	mlkv-ycsb -records 1000000 -ops 5000000 -threads 8 -dist zipfian \
//	          -valuesize 64 -buffer-mb 64 -engine mlkv -shards 4
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/ycsb"
)

func main() {
	var (
		records  = flag.Uint64("records", 1<<20, "number of preloaded records")
		ops      = flag.Int64("ops", 1<<21, "operations to run")
		threads  = flag.Int("threads", 8, "client threads")
		distName = flag.String("dist", "zipfian", "request distribution (uniform|zipfian)")
		vs       = flag.Int("valuesize", 64, "value size in bytes")
		bufferMB = flag.Int("buffer-mb", 64, "in-memory buffer budget (total, split across shards)")
		engine   = flag.String("engine", "mlkv", "engine (mlkv|faster)")
		readFrac = flag.Float64("read-fraction", 0.5, "fraction of reads")
		dir      = flag.String("dir", "", "data directory (default: temp)")
		shards   = flag.Int("shards", 1, "hash partitions (independent store instances)")
		sync     = flag.Bool("sync", false, "fsync every flushed log page (durable-NVMe mode)")
	)
	flag.Parse()
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "-shards must be >= 1, got %d\n", *shards)
		os.Exit(2)
	}

	var dist ycsb.Distribution
	switch *distName {
	case "uniform":
		dist = ycsb.Uniform
	case "zipfian":
		dist = ycsb.Zipfian
	default:
		fmt.Fprintf(os.Stderr, "unknown distribution %q\n", *distName)
		os.Exit(2)
	}
	bound := faster.BoundAsync // MLKV: clock maintained, never blocks
	if *engine == "faster" {
		bound = -1
	}
	d := *dir
	if d == "" {
		var err error
		d, err = os.MkdirTemp("", "mlkv-ycsb-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(d)
	}
	store, err := kv.OpenFasterShards(kv.ShardedConfig{
		Dir: d, Shards: *shards, ValueSize: *vs, RecordsPerPage: 256,
		MemoryBytes: int64(*bufferMB) << 20, ExpectedKeys: *records,
		StalenessBound: bound, SyncWrites: *sync,
	}, *engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer store.Close()

	fmt.Printf("loading %d records...\n", *records)
	res, err := ycsb.Run(ycsb.Options{
		Store: store, Records: *records, Threads: *threads,
		ReadFraction: *readFrac, Dist: dist, MaxOps: *ops, Seed: 42,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("engine=%s dist=%s threads=%d valuesize=%d buffer=%dMB shards=%d\n",
		*engine, dist, *threads, *vs, *bufferMB, *shards)
	fmt.Printf("ops=%d reads=%d updates=%d elapsed=%s throughput=%.0f ops/s\n",
		res.Ops, res.Reads, res.Updates, res.Elapsed.Round(1e6), res.Throughput)
}
