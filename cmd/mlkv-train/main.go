// Command mlkv-train trains one embedding model on a synthetic workload
// over a chosen storage backend — or, with -addr, against a live
// mlkv-server over the pipelined wire protocol — printing throughput, the
// stage breakdown, and the convergence curve.
//
// Usage:
//
//	mlkv-train -task dlrm -backend mlkv -staleness 8 -buffer-mb 64 -duration 30s
//	mlkv-train -task dlrm -addr 127.0.0.1:7070 -duration 30s
//
// Remote training goes through the public mlkv API: the trainer connects
// to "mlkv://addr" and opens the named model (-model, default the task
// name) with its dimension — the server creates it on first open. Each
// training step travels as one GETBATCH and one PUTBATCH frame; -scalar
// forces the legacy one-call-per-key path for comparison. For BSP over
// the network, run the server with -staleness 0 and train with -mode sync.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	mlkv "github.com/llm-db/mlkv-go"
	"github.com/llm-db/mlkv-go/internal/bptree"
	"github.com/llm-db/mlkv-go/internal/core"
	"github.com/llm-db/mlkv-go/internal/data"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/lsm"
	"github.com/llm-db/mlkv-go/internal/models"
	"github.com/llm-db/mlkv-go/internal/train"
)

func main() {
	var (
		task      = flag.String("task", "dlrm", "task (dlrm|kge|gnn)")
		backendN  = flag.String("backend", "mlkv", "backend (mlkv|faster|lsm|bptree|mem)")
		addr      = flag.String("addr", "", "train against a running mlkv-server at this address (overrides -backend)")
		modelID   = flag.String("model", "", "model name on the server (default: the task name)")
		conns     = flag.Int("conns", 0, "remote connection pool size (default: workers+2)")
		staleness = flag.Int64("staleness", 8, "staleness bound (MLKV only; -1 disables)")
		bufferMB  = flag.Int("buffer-mb", 64, "buffer budget")
		duration  = flag.Duration("duration", 15*time.Second, "training duration")
		maxSamp   = flag.Int64("max-samples", 0, "stop after this many samples (0 = duration only); use it to compare configurations at equal work")
		workers   = flag.Int("workers", 4, "training workers")
		dim       = flag.Int("dim", 16, "embedding dimension")
		keys      = flag.Uint64("keys", 1_000_000, "entity / key-space size")
		lookahead = flag.Int("lookahead", 16, "look-ahead depth (0 disables)")
		scalar    = flag.Bool("scalar", false, "use the per-key access path instead of batched gather/scatter")
		cache     = flag.Int("cache", 0, "staleness-aware hot-tier capacity in entries on the model's read path (0 disables; under SSP a remote tier bounds staleness against this trainer's own writes — use mlkv-server -cache when other clients' writes matter)")
		modeN     = flag.String("mode", "async", "pipeline structure for dlrm (async|sync); sync barriers every minibatch (BSP)")
		dir       = flag.String("dir", "", "data directory (default: temp)")
	)
	flag.Parse()
	mode := train.ModeAsync
	switch *modeN {
	case "async":
	case "sync":
		mode = train.ModeSync
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q (async|sync)\n", *modeN)
		os.Exit(2)
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	init := core.UniformInit(0.1, 7)
	if *task == "kge" {
		init = core.UniformInit(0.5, 7)
	}

	var backend train.Backend
	if *addr != "" {
		nc := *conns
		if nc <= 0 {
			// One connection per training worker (a BSP worker's blocked
			// read must not queue behind its unblocker's write on a shared
			// connection) plus slack for the evaluation handle and the
			// remote backend's lookahead worker.
			nc = *workers + 2
		}
		model := *modelID
		if model == "" {
			model = *task
		}
		var mopts []mlkv.Option
		if *cache > 0 {
			mopts = append(mopts, mlkv.WithCache(*cache))
		}
		rb, err := train.DialRemote(*addr, model, *dim, init, nc, mopts...)
		if err != nil {
			fail(err)
		}
		defer rb.Close()
		backend = rb
	} else {
		d := *dir
		if d == "" {
			var err error
			d, err = os.MkdirTemp("", "mlkv-train-*")
			if err != nil {
				fail(err)
			}
			defer os.RemoveAll(d)
		}
		switch *backendN {
		case "mlkv", "faster":
			// The public API against a local directory target — the same
			// code path a remote run takes, minus the wire.
			bound := *staleness
			if *backendN == "faster" {
				bound = mlkv.Disabled
			}
			db, err := mlkv.Connect(d)
			if err != nil {
				fail(err)
			}
			defer db.Close()
			model := *modelID
			if model == "" {
				model = *task
			}
			mdl, err := db.Open(model, *dim,
				mlkv.WithStalenessBound(bound),
				mlkv.WithMemory(int64(*bufferMB)<<20),
				mlkv.WithExpectedKeys(*keys),
				mlkv.WithInitializer(init),
				mlkv.WithCache(*cache))
			if err != nil {
				fail(err)
			}
			defer mdl.Close()
			backend = train.NewModelBackend(mdl, *backendN == "mlkv" && *lookahead > 0)
		case "lsm":
			s, err := lsm.Open(lsm.Config{Dir: d, ValueSize: *dim * 4, CacheBytes: *bufferMB << 19, MemtableBytes: *bufferMB << 19})
			if err != nil {
				fail(err)
			}
			defer s.Close()
			backend = train.NewKVBackend(kv.WrapLSM(s), *dim, init)
		case "bptree":
			s, err := bptree.Open(bptree.Config{Dir: d, ValueSize: *dim * 4, PoolPages: (*bufferMB << 20) / 4096})
			if err != nil {
				fail(err)
			}
			defer s.Close()
			backend = train.NewKVBackend(kv.WrapBPTree(s), *dim, init)
		case "mem":
			backend = train.NewMemBackend("mem", *dim, init)
		default:
			fmt.Fprintf(os.Stderr, "unknown backend %q\n", *backendN)
			os.Exit(2)
		}
	}

	var res *train.Result
	var err error
	eval := *duration / 5
	switch *task {
	case "dlrm":
		gen := data.NewCTRGen(data.CTRConfig{Fields: 8, DenseDim: 4, FieldCard: *keys / 8, Seed: 11})
		model := models.NewDLRM(models.FFNN, 8, *dim, 4, []int{32}, 13)
		res, err = train.TrainCTR(train.CTROptions{
			Gen: gen, Model: model, Backend: backend,
			Workers: *workers, Mode: mode, Scalar: *scalar,
			DenseLR: 0.05, EmbLR: 0.05, Duration: *duration, MaxSamples: *maxSamp,
			LookaheadDepth: *lookahead, EvalEvery: eval,
		})
	case "kge":
		gen := data.NewKGGen(data.KGConfig{Entities: *keys, Relations: 16, Clusters: 32, Seed: 17})
		model := models.NewKGE(models.DistMult, *dim)
		res, err = train.TrainKGE(train.KGEOptions{
			Gen: gen, Model: model, Backend: backend,
			Workers: *workers, EmbLR: 0.1, Duration: *duration, MaxSamples: *maxSamp, Scalar: *scalar,
			LookaheadDepth: *lookahead, EvalEvery: eval,
		})
	case "gnn":
		graph := data.NewGraphGen(data.GraphConfig{Nodes: *keys, Classes: 8, Seed: 19})
		sage := models.NewGraphSage(*dim, 32, 8, 23)
		res, err = train.TrainGNN(train.GNNOptions{
			Graph: graph, Kind: train.KindGraphSage, Sage: sage, Backend: backend,
			Workers: *workers, DenseLR: 0.05, EmbLR: 0.05, Duration: *duration, MaxSamples: *maxSamp, Scalar: *scalar,
			LookaheadDepth: *lookahead, EvalEvery: eval,
		})
	default:
		fmt.Fprintf(os.Stderr, "unknown task %q\n", *task)
		os.Exit(2)
	}
	if err != nil {
		fail(err)
	}
	tot := res.Stage.Total().Seconds()
	if tot == 0 {
		tot = 1
	}
	path := "batched"
	if *scalar {
		path = "scalar"
	}
	fmt.Printf("task=%s backend=%s path=%s samples=%d throughput=%.0f/s\n", *task, res.Backend, path, res.Samples, res.Throughput)
	fmt.Printf("latency breakdown: emb=%.1f%% fwd=%.1f%% bwd=%.1f%%\n",
		res.Stage.Emb.Seconds()/tot*100, res.Stage.Forward.Seconds()/tot*100, res.Stage.Backward.Seconds()/tot*100)
	fmt.Printf("final metric: %.4f\n", res.FinalMetric)
	for _, p := range res.Curve {
		fmt.Printf("  t=%6.1fs metric=%.4f\n", p.Seconds, p.Metric)
	}
}
