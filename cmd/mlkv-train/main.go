// Command mlkv-train trains one embedding model on a synthetic workload
// over a chosen storage backend, printing throughput, the stage breakdown,
// and the convergence curve.
//
// Usage:
//
//	mlkv-train -task dlrm -backend mlkv -staleness 8 -buffer-mb 64 -duration 30s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/llm-db/mlkv-go/internal/bptree"
	"github.com/llm-db/mlkv-go/internal/core"
	"github.com/llm-db/mlkv-go/internal/data"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/lsm"
	"github.com/llm-db/mlkv-go/internal/models"
	"github.com/llm-db/mlkv-go/internal/train"
)

func main() {
	var (
		task      = flag.String("task", "dlrm", "task (dlrm|kge|gnn)")
		backendN  = flag.String("backend", "mlkv", "backend (mlkv|faster|lsm|bptree|mem)")
		staleness = flag.Int64("staleness", 8, "staleness bound (MLKV only; -1 disables)")
		bufferMB  = flag.Int("buffer-mb", 64, "buffer budget")
		duration  = flag.Duration("duration", 15*time.Second, "training duration")
		workers   = flag.Int("workers", 4, "training workers")
		dim       = flag.Int("dim", 16, "embedding dimension")
		keys      = flag.Uint64("keys", 1_000_000, "entity / key-space size")
		lookahead = flag.Int("lookahead", 16, "look-ahead depth (0 disables)")
		dir       = flag.String("dir", "", "data directory (default: temp)")
	)
	flag.Parse()

	d := *dir
	if d == "" {
		var err error
		d, err = os.MkdirTemp("", "mlkv-train-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(d)
	}
	init := core.UniformInit(0.1, 7)
	if *task == "kge" {
		init = core.UniformInit(0.5, 7)
	}
	var backend train.Backend
	switch *backendN {
	case "mlkv", "faster":
		bound := *staleness
		if *backendN == "faster" {
			bound = core.BoundDisabled
		}
		tbl, err := core.OpenTable(core.Options{
			Dir: d, Dim: *dim, StalenessBound: bound,
			MemoryBytes: int64(*bufferMB) << 20, ExpectedKeys: *keys, Init: init,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer tbl.Close()
		backend = train.NewTableBackend(tbl, *backendN == "mlkv" && *lookahead > 0)
	case "lsm":
		s, err := lsm.Open(lsm.Config{Dir: d, ValueSize: *dim * 4, CacheBytes: *bufferMB << 19, MemtableBytes: *bufferMB << 19})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer s.Close()
		backend = train.NewKVBackend(kv.WrapLSM(s), *dim, init)
	case "bptree":
		s, err := bptree.Open(bptree.Config{Dir: d, ValueSize: *dim * 4, PoolPages: (*bufferMB << 20) / 4096})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer s.Close()
		backend = train.NewKVBackend(kv.WrapBPTree(s), *dim, init)
	case "mem":
		backend = train.NewMemBackend("mem", *dim, init)
	default:
		fmt.Fprintf(os.Stderr, "unknown backend %q\n", *backendN)
		os.Exit(2)
	}

	var res *train.Result
	var err error
	eval := *duration / 5
	switch *task {
	case "dlrm":
		gen := data.NewCTRGen(data.CTRConfig{Fields: 8, DenseDim: 4, FieldCard: *keys / 8, Seed: 11})
		model := models.NewDLRM(models.FFNN, 8, *dim, 4, []int{32}, 13)
		res, err = train.TrainCTR(train.CTROptions{
			Gen: gen, Model: model, Backend: backend,
			Workers: *workers, Mode: train.ModeAsync,
			DenseLR: 0.05, EmbLR: 0.05, Duration: *duration,
			LookaheadDepth: *lookahead, EvalEvery: eval,
		})
	case "kge":
		gen := data.NewKGGen(data.KGConfig{Entities: *keys, Relations: 16, Clusters: 32, Seed: 17})
		model := models.NewKGE(models.DistMult, *dim)
		res, err = train.TrainKGE(train.KGEOptions{
			Gen: gen, Model: model, Backend: backend,
			Workers: *workers, EmbLR: 0.1, Duration: *duration,
			LookaheadDepth: *lookahead, EvalEvery: eval,
		})
	case "gnn":
		graph := data.NewGraphGen(data.GraphConfig{Nodes: *keys, Classes: 8, Seed: 19})
		sage := models.NewGraphSage(*dim, 32, 8, 23)
		res, err = train.TrainGNN(train.GNNOptions{
			Graph: graph, Kind: train.KindGraphSage, Sage: sage, Backend: backend,
			Workers: *workers, DenseLR: 0.05, EmbLR: 0.05, Duration: *duration,
			LookaheadDepth: *lookahead, EvalEvery: eval,
		})
	default:
		fmt.Fprintf(os.Stderr, "unknown task %q\n", *task)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tot := res.Stage.Total().Seconds()
	if tot == 0 {
		tot = 1
	}
	fmt.Printf("task=%s backend=%s samples=%d throughput=%.0f/s\n", *task, res.Backend, res.Samples, res.Throughput)
	fmt.Printf("latency breakdown: emb=%.1f%% fwd=%.1f%% bwd=%.1f%%\n",
		res.Stage.Emb.Seconds()/tot*100, res.Stage.Forward.Seconds()/tot*100, res.Stage.Backward.Seconds()/tot*100)
	fmt.Printf("final metric: %.4f\n", res.FinalMetric)
	for _, p := range res.Curve {
		fmt.Printf("  t=%6.1fs metric=%.4f\n", p.Seconds, p.Metric)
	}
}
