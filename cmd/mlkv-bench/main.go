// Command mlkv-bench regenerates the paper's tables and figures, plus the
// post-paper sharding and network-serving sweeps.
//
// Usage:
//
//	mlkv-bench -experiment fig7 -scale small -workdir /tmp/mlkv-bench
//	mlkv-bench -experiment shards -scale small
//	mlkv-bench -experiment network -scale small
//	mlkv-bench -experiment trainbatch -scale small
//	mlkv-bench -experiment engines -scale small -json .
//
// Experiments: fig2 fig6 fig7 fig8 fig9 fig10 fig11 shards network
// trainbatch cache allocs engines latency cluster all. Scales: tiny
// (seconds), small (minutes, default), paper (hours). -shards partitions
// every table the figX experiments open (the "shards" experiment sweeps
// shard counts itself; "network" compares in-process against a loopback
// mlkv-server at batch sizes 1/32/256; "trainbatch" compares scalar vs
// batched gather/scatter DLRM training, locally and over loopback;
// "engines" races the faster/lsm/bptree engines behind one seam on YCSB
// mixes, batched training, and public-API batched reads; "latency" maps
// the read path's p50/p99/p999 tail across offered load — workers ×
// batch, in-process and loopback, hot tier off and on; "cluster" runs the
// Zipf workload against one loopback node vs a three-node cluster — two
// primaries plus a read replica — at batch 1/256 under ASP and SSP).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/llm-db/mlkv-go/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run (fig2|fig6|fig7|fig8|fig9|fig10|fig11|shards|network|trainbatch|cache|allocs|engines|latency|cluster|all)")
		scaleName  = flag.String("scale", "small", "workload scale (tiny|small|paper)")
		workdir    = flag.String("workdir", "", "scratch directory for store data (default: a temp dir)")
		shards     = flag.Int("shards", 1, "hash partitions for every MLKV/FASTER table opened by figX experiments")
		jsonDir    = flag.String("json", "", "directory to write machine-readable BENCH_<experiment>.json results into (empty disables)")
		hedge      = flag.Duration("hedge", 0, "fixed hedge delay for the latency experiment's hedged remote rows (0 = adaptive, derived from the pool's observed tail)")
	)
	flag.Parse()

	scale, err := bench.ScaleByName(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	dir := *workdir
	if dir == "" {
		dir, err = os.MkdirTemp("", "mlkv-bench-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
	}
	fmt.Printf("mlkv-bench: scale=%s workdir=%s shards=%d\n", scale.Name, dir, *shards)
	env := bench.NewEnv(scale, dir, os.Stdout)
	env.Shards = *shards
	env.JSONDir = *jsonDir
	env.HedgeDelay = *hedge
	if err := env.Run(*experiment); err != nil {
		fmt.Fprintln(os.Stderr, "mlkv-bench:", err)
		os.Exit(1)
	}
}
