// Command mlkv-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	mlkv-bench -experiment fig7 -scale small -workdir /tmp/mlkv-bench
//
// Experiments: fig2 fig6 fig7 fig8 fig9 fig10 fig11 all.
// Scales: tiny (seconds), small (minutes, default), paper (hours).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/llm-db/mlkv-go/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run (fig2|fig6|fig7|fig8|fig9|fig10|fig11|all)")
		scaleName  = flag.String("scale", "small", "workload scale (tiny|small|paper)")
		workdir    = flag.String("workdir", "", "scratch directory for store data (default: a temp dir)")
	)
	flag.Parse()

	scale, err := bench.ScaleByName(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	dir := *workdir
	if dir == "" {
		dir, err = os.MkdirTemp("", "mlkv-bench-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
	}
	fmt.Printf("mlkv-bench: scale=%s workdir=%s\n", scale.Name, dir)
	env := bench.NewEnv(scale, dir, os.Stdout)
	if err := env.Run(*experiment); err != nil {
		fmt.Fprintln(os.Stderr, "mlkv-bench:", err)
		os.Exit(1)
	}
}
